//! Compilation of a rule/goal graph into a process network.
//!
//! All schema work happens here, once, before any message flows: stage
//! schemas with liveness projection, join column maps, request
//! construction maps, head output maps, EDB pre-filtering and indexing.
//! The per-message handlers in `process.rs` then only move tuples.

use crate::msg::Endpoint;
use crate::termination::TermState;
use mp_datalog::{Database, Term, Var};
use mp_rulegoal::{GoalKind, LabelArg, Node, NodeId, RuleGoalGraph};
use mp_storage::{FastMap, FastSet, IndexedRelation, KeyIndex, Relation, Tuple, Value};
use std::collections::{BTreeSet, HashMap};

/// A customer arc's static configuration plus per-stream state.
#[derive(Clone, Debug)]
pub struct CustState {
    /// The customer endpoint.
    pub ep: Endpoint,
    /// True when both ends are in the same nontrivial strong component
    /// (no per-binding/stream ends travel such arcs; the §3.2 protocol
    /// covers them).
    pub intra: bool,
    /// Bindings received on this arc.
    pub subs: FastSet<Tuple>,
    /// Bindings whose end-tuple-request has been sent.
    pub ended: FastSet<Tuple>,
    /// End-of-requests received.
    pub eor: bool,
    /// Stream end sent.
    pub end_sent: bool,
}

impl CustState {
    fn new(ep: Endpoint, intra: bool) -> Self {
        CustState {
            ep,
            intra,
            subs: FastSet::default(),
            ended: FastSet::default(),
            eor: false,
            end_sent: false,
        }
    }
}

/// A feeder arc's static configuration.
#[derive(Clone, Debug)]
pub struct FeederCfg {
    /// The feeder node (physical id under sharding).
    pub node: NodeId,
    /// Same-nontrivial-SCC flag (see [`CustState::intra`]).
    pub intra: bool,
    /// Logical feeder index this arc belongs to (the rule stage for rule
    /// nodes). A sharded feeder contributes one arc per shard, all with
    /// the same slot; [`StageCfg::arcs`] lists them in shard order.
    pub slot: usize,
}

/// Static configuration of an IDB goal node.
#[derive(Clone, Debug)]
pub struct GoalCfg {
    /// Positions of the label's `d` arguments *within* the transmitted
    /// (non-`e`) schema — the columns customers' bindings address.
    pub d_in_transmitted: Vec<usize>,
    /// Transmitted schema width.
    pub transmitted_len: usize,
}

/// Static configuration of an EDB leaf.
#[derive(Clone, Debug)]
pub struct EdbCfg {
    /// The base relation, pre-filtered by the label's constants and
    /// repeated-variable equalities, with full arity.
    pub filtered: Relation,
    /// Hash index of `filtered` on the label's `d` positions.
    pub index: KeyIndex,
    /// Transmitted (non-`e`) positions, full-arity space.
    pub transmitted: Vec<usize>,
}

/// Static configuration of a cycle-reference node: a relay that performs
/// the ancestor's "selection" by subscription.
#[derive(Clone, Debug)]
pub struct CycleCfg {
    /// The ancestor goal node (feeder index 0).
    pub ancestor: NodeId,
}

/// Where a head output column comes from.
#[derive(Clone, Debug)]
pub enum HeadSource {
    /// A constant in the instance head.
    Const(Value),
    /// A column of the final stage schema.
    Var(usize),
}

/// A negated subgoal compiled into an antijoin filter. Stratified
/// staging guarantees the negated predicate is fully materialized — an
/// EDB relation within this run — before any rule above it fires, so
/// the complement check is a plain probe into a frozen set at head
/// emission time.
#[derive(Clone, Debug)]
pub struct NegFilter {
    /// Bindings that block emission: the negated relation projected onto
    /// its variable positions (first occurrence per variable, in term
    /// order), with constant and repeated-variable filters pre-applied.
    pub blocked: FastSet<Tuple>,
    /// Final-stage-schema columns supplying the probe values, aligned
    /// with the projection above.
    pub probe_cols: Vec<usize>,
    /// A ground negated subgoal matched a fact: the rule never fires.
    pub always_block: bool,
}

/// One pipeline stage: joining the next subgoal's answers into the
/// accumulated bindings.
#[derive(Clone, Debug)]
pub struct StageCfg {
    /// Feeder arc indices of the subgoal's goal node, one per shard in
    /// shard order. A tuple request routes to
    /// `arcs[shard_hash(request) % arcs.len()]`; end-of-requests and the
    /// stage-close bookkeeping address every arc of the stage.
    pub arcs: Vec<usize>,
    /// Stage schema *after* this join (liveness-projected).
    pub schema: Vec<Var>,
    /// For each `d` position of the subgoal (in position order): the
    /// supplying column of the previous stage schema.
    pub request_from_prev: Vec<usize>,
    /// Join key columns in the previous stage schema.
    pub join_prev_cols: Vec<usize>,
    /// Join key columns in the subgoal's answer (transmitted space),
    /// aligned with `join_prev_cols`.
    pub join_answer_cols: Vec<usize>,
    /// Pairs of answer columns that must be equal (repeated variables).
    pub answer_eq_checks: Vec<(usize, usize)>,
    /// How to build a stage tuple from (previous stage tuple, answer).
    pub build: Vec<StageSource>,
    /// The subgoal's transmitted arity (width of its answer tuples).
    pub answer_arity: usize,
}

/// Source of one stage-schema column.
#[derive(Clone, Copy, Debug)]
pub enum StageSource {
    /// Column of the previous stage tuple.
    Prev(usize),
    /// Column of the incoming answer.
    Ans(usize),
}

/// Static configuration of a rule node's staged pipeline.
#[derive(Clone, Debug)]
pub struct RuleCfg {
    /// Instance head terms at the label's `d` positions (constants filter
    /// incoming bindings; variables seed stage 0).
    pub head_d_terms: Vec<Term>,
    /// Stage-0 schema: the distinct bound head variables.
    pub stage0_schema: Vec<Var>,
    /// The subgoal stages, in SIP order.
    pub stages: Vec<StageCfg>,
    /// Output map for the head label's transmitted positions.
    pub head_out: Vec<HeadSource>,
    /// Customer arc indices of the parent goal, one per shard in shard
    /// order (`[0]` when the parent is single-instance). A head answer
    /// routes to `head_arcs[shard_hash(key) % head_arcs.len()]`.
    pub head_arcs: Vec<usize>,
    /// Columns of the head answer (transmitted space) forming the
    /// routing key: the parent goal's `d` columns, so an answer lands on
    /// the shard that owns the binding it responds to. Empty when the
    /// parent is single-instance.
    pub head_hash_cols: Vec<usize>,
    /// Antijoin filters, one per negated subgoal, applied at head
    /// emission. Empty for purely positive rules.
    pub neg_filters: Vec<NegFilter>,
}

/// Per-rule-node mutable state.
#[derive(Clone, Debug, Default)]
pub struct RuleState {
    /// `stage_bindings[l]` = accumulated bindings after stage `l`
    /// (0 = head seeds), indexed for the next stage's join.
    pub stage_bindings: Vec<IndexedRelation>,
    /// Stored subgoal answers per stage (§3.1's temporary relations),
    /// indexed on the join key.
    pub ans_store: Vec<IndexedRelation>,
    /// Requests already sent per stage.
    pub requested: Vec<FastSet<Tuple>>,
    /// `stage_closed[l]`: no more stage-`l` bindings will be derived
    /// (trivial-component nodes only).
    pub stage_closed: Vec<bool>,
}

/// Per-goal-node mutable state.
#[derive(Clone, Debug, Default)]
pub struct GoalState {
    /// The node's answer relation (transmitted schema), indexed on the
    /// `d` columns.
    pub answers: IndexedRelation,
    /// Globally seen bindings (deduplicates forwarding to rule children).
    pub bindings: FastSet<Tuple>,
    /// binding → customer indices subscribed to it.
    pub subs_by_binding: FastMap<Tuple, Vec<usize>>,
}

/// Behavior + state of one process.
#[derive(Clone, Debug)]
pub enum Behavior {
    /// Expanded IDB goal node: unions its rule children, stores answers,
    /// streams per subscription.
    Goal {
        /// Static config.
        cfg: GoalCfg,
        /// Mutable state.
        st: GoalState,
    },
    /// EDB leaf.
    Edb {
        /// Static config.
        cfg: EdbCfg,
    },
    /// Rule node pipeline.
    Rule {
        /// Static config.
        cfg: RuleCfg,
        /// Mutable state.
        st: RuleState,
    },
    /// Cycle-reference relay.
    CycleRef {
        /// Static config.
        cfg: CycleCfg,
    },
}

/// State shared by all process kinds.
#[derive(Clone, Debug)]
pub struct Common {
    /// This node's id.
    pub id: NodeId,
    /// Customer arcs.
    pub customers: Vec<CustState>,
    /// Feeder arcs.
    pub feeders: Vec<FeederCfg>,
    /// Stream-end received per feeder.
    pub feeder_end: Vec<bool>,
    /// Outstanding (feeder, binding) tuple requests on cross arcs.
    pub pending: FastSet<(usize, Tuple)>,
    /// Relation request already forwarded to feeders.
    pub relreq_forwarded: bool,
    /// End-of-requests already sent to feeders.
    pub eor_sent_to_feeders: bool,
    /// §3.2 protocol state (members of nontrivial components only).
    pub term: Option<TermState>,
    /// Package tuple requests, answers, and per-binding ends produced
    /// while handling one message into one batch per arc (§3.1
    /// footnote 2).
    pub batching: bool,
    /// Flush bound: an arc's buffer reaching this size forces a flush
    /// even mid-turn (the size bound of the flush policy; the turn bound
    /// is the mailbox-empty flush at the end of every `handle`).
    pub batch_max: usize,
    /// Per-feeder buffer of requests awaiting the end-of-handle flush
    /// (only used when `batching` is set).
    pub batch_buf: Vec<Vec<Tuple>>,
    /// Per-customer buffer of answers awaiting the end-of-handle flush
    /// (only used when `batching` is set).
    pub answer_buf: Vec<Vec<Tuple>>,
    /// Per-customer buffer of per-binding ends awaiting the
    /// end-of-handle flush. Flushed after `answer_buf` on the same arc,
    /// so a binding's answers always precede its end (per-arc FIFO).
    pub etr_buf: Vec<Vec<Tuple>>,
    /// Per-arc logical items routed onto sharded links, feeder arcs
    /// first then customer arcs (stats only: feeds the
    /// `shard_routed_frames` counter and the `shard_max_skew` gauge).
    /// Stays all-zero on unsharded networks.
    pub shard_sent: Vec<u64>,
    /// Set on the first delivered `Cancel` wave (resource governance):
    /// the node keeps draining the protocol — frames are still acked —
    /// but drops work, discards its buffers, and never emits another
    /// answer (MP310). Sticky for the life of the process; a reborn
    /// node re-learns it from log replay.
    pub cancelled: bool,
}

/// One compiled process.
#[derive(Clone, Debug)]
pub struct Process {
    /// Shared plumbing.
    pub common: Common,
    /// Kind-specific behavior.
    pub behavior: Behavior,
}

/// How the compiler replicates nodes under `--shards K`: the requested
/// shard count and the per-logical-node fan-out vector (mp-analyze's
/// `shard_fan_outs`, each entry 1 or `shards`). The default plan is the
/// unsharded network.
#[derive(Clone, Debug, Default)]
pub struct ShardPlan {
    /// Requested shard count (0/1 = unsharded).
    pub shards: usize,
    /// Instances per logical node; missing entries default to 1.
    pub fan_out: Vec<usize>,
}

/// Deterministic shard router: fold the key values through
/// [`mp_storage::FastHasher`] (fixed seed, no per-process state), so the
/// simulated and pooled runtimes — and a replaying process — route every
/// frame identically.
pub fn shard_hash(values: &[Value]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = mp_storage::FastHasher::default();
    for v in values {
        v.hash(&mut h);
    }
    h.finish()
}

/// [`shard_hash`] over a projection of `t`, without allocating the
/// projected tuple. The fold visits `cols` in order, so hashing a stored
/// row on its `d` positions equals hashing the request binding built
/// from those positions.
pub fn shard_hash_cols(t: &Tuple, cols: &[usize]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = mp_storage::FastHasher::default();
    for &c in cols {
        t[c].hash(&mut h);
    }
    h.finish()
}

/// The compiled network.
#[derive(Clone, Debug)]
pub struct Network {
    /// Processes indexed by physical id (== [`NodeId`] when unsharded).
    pub processes: Vec<Process>,
    /// The root goal node's physical id (its customer is the engine; the
    /// root is a gather point and never sharded).
    pub root: NodeId,
    /// Answer arity (the goal predicate's transmitted width).
    pub answer_arity: usize,
    /// Requested shard count (1 = unsharded).
    pub shards: usize,
    /// Physical id → (logical node id, shard index).
    pub shard_of: Vec<(NodeId, usize)>,
}

impl Network {
    /// Enable message batching (§3.1 footnote 2) on every process:
    /// tuple requests downward, answers and per-binding ends upward.
    pub fn set_batching(&mut self, on: bool) {
        for p in &mut self.processes {
            p.common.batching = on;
        }
    }

    /// Set the per-arc flush bound on every process (clamped to ≥ 1).
    /// Only observable when batching is enabled.
    pub fn set_batch_max(&mut self, max: usize) {
        for p in &mut self.processes {
            p.common.batch_max = max.max(1);
        }
    }

    /// Directed (from, to) node pairs that lie inside a nontrivial
    /// strong component, in both message directions. Credit windows are
    /// never applied to these links: stalling a recursive answer that
    /// its own producer transitively waits on could deadlock the cycle,
    /// so flow control gates only cross-component links and the engine
    /// injector.
    pub fn intra_pairs(&self) -> std::collections::BTreeSet<(NodeId, NodeId)> {
        let mut pairs = std::collections::BTreeSet::new();
        for p in &self.processes {
            let id = p.common.id;
            for c in &p.common.customers {
                if let (true, crate::msg::Endpoint::Node(n)) = (c.intra, c.ep) {
                    pairs.insert((id, n));
                    pairs.insert((n, id));
                }
            }
            for f in p.common.feeders.iter().filter(|f| f.intra) {
                pairs.insert((id, f.node));
                pairs.insert((f.node, id));
            }
            // Probe-tree links: at K=1 the BFST follows component arcs,
            // so these are already present; under sharding a captain's
            // shard siblings are protocol-only neighbors with no data
            // arc, and their wave traffic must never be credit-windowed
            // (stalling an EndConfirmed a concluding leader transitively
            // waits on could deadlock the wave).
            if let Some(t) = &p.common.term {
                if let Some(parent) = t.bfst_parent {
                    pairs.insert((id, parent));
                    pairs.insert((parent, id));
                }
                for &child in &t.bfst_children {
                    pairs.insert((id, child));
                    pairs.insert((child, id));
                }
            }
        }
        pairs
    }

    /// Compile `graph` over `db`, unsharded (every node single-instance).
    pub fn compile(graph: &RuleGoalGraph, db: &Database) -> Network {
        Self::compile_sharded(graph, db, &ShardPlan::default())
    }

    /// Compile `graph` over `db`, replicating each node `plan.fan_out`
    /// ways (ROADMAP item 1's data-parallel evaluation).
    ///
    /// Physical layout: logical node `X`'s instances occupy the
    /// contiguous physical ids `offsets[X] .. offsets[X] + fan_out[X]`.
    /// Only request-keyed goal-kind nodes fan out (see mp-analyze's
    /// `shard_fan_outs`), so every arc pairs a single-instance side with
    /// each shard of the other: a rule holds one feeder arc per shard of
    /// a sharded subgoal ([`StageCfg::arcs`]) and one customer arc per
    /// shard of a sharded parent ([`RuleCfg::head_arcs`]), routing both
    /// by [`shard_hash`]. The one shard-to-shard case is a sharded cycle
    /// reference over an equally-sharded (non-leader) ancestor, which
    /// pairs shard `s` with shard `s`: the reference forwards the very
    /// binding tuple its own requests were hash-routed by, so shard `s`
    /// only ever sees bindings it also owns at the ancestor.
    ///
    /// For the §3.2 protocol, shard 0 is its group's *captain*: it keeps
    /// the logical node's BFST parent/children (mapped to captains) and
    /// adopts its shard siblings as extra protocol children — the probe
    /// wave aggregates a shard group's idleness and Mattern counters
    /// through the captain before the (never-sharded) leader concludes,
    /// which is the two-level termination wave.
    pub fn compile_sharded(graph: &RuleGoalGraph, db: &Database, plan: &ShardPlan) -> Network {
        let scc = graph.scc();
        let intra = |a: NodeId, b: NodeId| -> bool {
            scc.component_of(a) == scc.component_of(b) && scc.in_nontrivial(a)
        };
        let fo = |id: NodeId| plan.fan_out.get(id).copied().unwrap_or(1).max(1);

        let mut offsets = Vec::with_capacity(graph.len());
        let mut n_phys = 0usize;
        for id in 0..graph.len() {
            offsets.push(n_phys);
            n_phys += fo(id);
        }

        let mut processes = Vec::with_capacity(n_phys);
        let mut shard_of = Vec::with_capacity(n_phys);
        for (id, node) in graph.nodes() {
            let k = fo(id);
            // Shared per-logical-node precomputation.
            let edb_template = match node {
                Node::Goal {
                    label,
                    kind: GoalKind::Edb,
                    ..
                } => Some(compile_edb(label, db)),
                _ => None,
            };
            for s in 0..k {
                shard_of.push((id, s));
                let mut customers: Vec<CustState> = Vec::new();
                for &(c, _) in graph.customers(id) {
                    let ck = fo(c);
                    if ck > 1 && k > 1 {
                        // Sharded cycle ref over a sharded ancestor:
                        // shard-aligned (fan-outs are equal by
                        // construction — both label variants share the
                        // same `d` structure and neither is the leader).
                        debug_assert_eq!(ck, k, "aligned shard groups");
                        customers
                            .push(CustState::new(Endpoint::Node(offsets[c] + s), intra(id, c)));
                    } else {
                        for t in 0..ck {
                            customers
                                .push(CustState::new(Endpoint::Node(offsets[c] + t), intra(id, c)));
                        }
                    }
                }
                if id == graph.root() {
                    customers.push(CustState::new(Endpoint::Engine, false));
                }

                let mut feeders: Vec<FeederCfg> = Vec::new();
                let mut feeder_arcs: Vec<Vec<usize>> = Vec::new();
                for &(f, _) in graph.feeders(id) {
                    let fk = fo(f);
                    let slot = feeder_arcs.len();
                    let mut arcs = Vec::with_capacity(fk);
                    if fk > 1 && k > 1 {
                        debug_assert_eq!(fk, k, "aligned shard groups");
                        arcs.push(feeders.len());
                        feeders.push(FeederCfg {
                            node: offsets[f] + s,
                            intra: intra(id, f),
                            slot,
                        });
                    } else {
                        for t in 0..fk {
                            arcs.push(feeders.len());
                            feeders.push(FeederCfg {
                                node: offsets[f] + t,
                                intra: intra(id, f),
                                slot,
                            });
                        }
                    }
                    feeder_arcs.push(arcs);
                }

                let term = if scc.in_nontrivial(id) {
                    let comp = scc.component_of(id);
                    let leader = scc.leader_of(comp).expect("nontrivial SCC has a leader");
                    debug_assert!(leader != id || k == 1, "leaders are never sharded");
                    if s == 0 {
                        // Captain: the logical BFST links (captains are
                        // shard 0, so `offsets` maps node → captain)
                        // plus the shard siblings as protocol children.
                        let mut children: Vec<NodeId> =
                            scc.bfst_children(id).iter().map(|&c| offsets[c]).collect();
                        children.extend((1..k).map(|t| offsets[id] + t));
                        Some(TermState::new(
                            leader == id,
                            scc.bfst_parent(id).map(|p| offsets[p]),
                            children,
                        ))
                    } else {
                        Some(TermState::new(false, Some(offsets[id]), Vec::new()))
                    }
                } else {
                    None
                };

                let behavior = match node {
                    Node::Goal { label, kind, .. } => match kind {
                        GoalKind::Idb => {
                            let d_in_transmitted = d_in_transmitted(label);
                            let transmitted_len = label.adornment().transmitted_positions().len();
                            let mut st = GoalState {
                                answers: IndexedRelation::new(transmitted_len),
                                ..GoalState::default()
                            };
                            let cfg = GoalCfg {
                                d_in_transmitted,
                                transmitted_len,
                            };
                            st.answers
                                .ensure_index(&cfg.d_in_transmitted)
                                .expect("columns in range");
                            Behavior::Goal { cfg, st }
                        }
                        GoalKind::Edb => {
                            let template =
                                edb_template.as_ref().expect("precomputed for EDB leaves");
                            Behavior::Edb {
                                cfg: if k > 1 {
                                    shard_edb(template, label, s, k)
                                } else {
                                    template.clone()
                                },
                            }
                        }
                        GoalKind::CycleRef { ancestor } => Behavior::CycleRef {
                            cfg: CycleCfg {
                                ancestor: *ancestor,
                            },
                        },
                    },
                    Node::Rule {
                        rule,
                        plan: sip,
                        head_label,
                        ..
                    } => {
                        let (mut cfg, st) = compile_rule(rule, sip, head_label, db);
                        debug_assert_eq!(k, 1, "rule nodes are never sharded");
                        for (i, stage) in cfg.stages.iter_mut().enumerate() {
                            stage.arcs = feeder_arcs[i].clone();
                        }
                        // Head routing: one arc per parent-goal shard
                        // (rules have exactly one logical customer).
                        cfg.head_arcs = (0..customers.len()).collect();
                        if customers.len() > 1 {
                            let parent = graph
                                .customers(id)
                                .first()
                                .map(|&(c, _)| c)
                                .expect("rule nodes have a parent goal");
                            let parent_label = graph
                                .node(parent)
                                .goal_label()
                                .expect("a rule's parent is a goal");
                            cfg.head_hash_cols = d_in_transmitted(parent_label);
                        }
                        Behavior::Rule { cfg, st }
                    }
                };

                let feeder_count = feeders.len();
                let customer_count = customers.len();
                processes.push(Process {
                    common: Common {
                        id: offsets[id] + s,
                        customers,
                        feeders,
                        feeder_end: vec![false; feeder_count],
                        pending: FastSet::default(),
                        relreq_forwarded: false,
                        eor_sent_to_feeders: false,
                        term,
                        batching: false,
                        batch_max: 64,
                        batch_buf: vec![Vec::new(); feeder_count],
                        answer_buf: vec![Vec::new(); customer_count],
                        etr_buf: vec![Vec::new(); customer_count],
                        shard_sent: vec![0; feeder_count + customer_count],
                        cancelled: false,
                    },
                    behavior,
                });
            }
        }

        let root_label = graph
            .node(graph.root())
            .goal_label()
            .expect("root is a goal node");
        Network {
            processes,
            root: offsets[graph.root()],
            answer_arity: root_label.adornment().transmitted_positions().len(),
            shards: plan.shards.max(1),
            shard_of,
        }
    }
}

/// Positions of a label's `d` arguments within its transmitted (non-`e`)
/// schema — the columns request bindings address and answers are routed
/// by.
fn d_in_transmitted(label: &mp_rulegoal::GoalLabel) -> Vec<usize> {
    let ad = label.adornment();
    let transmitted = ad.transmitted_positions();
    ad.d_positions()
        .iter()
        .map(|p| {
            transmitted
                .iter()
                .position(|t| t == p)
                .expect("d positions are transmitted")
        })
        .collect()
}

/// Shard `s`'s slice of a compiled EDB leaf: the rows whose `d`-position
/// projection hashes to `s`. A request binding is exactly those values
/// in the same order, so the shard a request routes to holds every row
/// that can answer it.
fn shard_edb(template: &EdbCfg, label: &mp_rulegoal::GoalLabel, s: usize, k: usize) -> EdbCfg {
    let d_positions = label.adornment().d_positions();
    debug_assert!(!d_positions.is_empty(), "sharded EDB leaves are keyed");
    let mut filtered = Relation::new(template.filtered.arity());
    for t in template.filtered.iter() {
        if shard_hash_cols(t, &d_positions) % k as u64 == s as u64 {
            filtered
                .insert(t.clone())
                .expect("same arity as the template");
        }
    }
    let index = KeyIndex::build(&filtered, &d_positions).expect("d positions in range");
    EdbCfg {
        filtered,
        index,
        transmitted: template.transmitted.clone(),
    }
}

/// Pre-filter and index an EDB relation for a leaf's label.
fn compile_edb(label: &mp_rulegoal::GoalLabel, db: &Database) -> EdbCfg {
    let ad = label.adornment();
    let empty = Relation::new(label.arity());
    let base: &Relation = db.relation(&label.pred).unwrap_or(&empty);

    // Constant checks and repeated-variable groups from the label.
    let mut const_checks: Vec<(usize, Value)> = Vec::new();
    let mut group_positions: HashMap<u16, Vec<usize>> = HashMap::new();
    for (i, arg) in label.args.iter().enumerate() {
        match arg {
            LabelArg::Const(v) => const_checks.push((i, *v)),
            LabelArg::Var { group, .. } => group_positions.entry(*group).or_default().push(i),
        }
    }
    let eq_groups: Vec<Vec<usize>> = group_positions
        .into_values()
        .filter(|g| g.len() > 1)
        .collect();

    // An unconstrained label keeps the whole relation: clone it (dedup
    // structure and all) instead of re-hashing every row. Labels with
    // constants or repeated variables re-insert the surviving subset.
    let filtered = if const_checks.is_empty() && eq_groups.is_empty() {
        base.clone()
    } else {
        let mut filtered = Relation::new(base.arity());
        for t in base.iter() {
            let consts_ok = const_checks.iter().all(|(i, v)| &t[*i] == v);
            let eq_ok = eq_groups.iter().all(|g| g.iter().all(|&p| t[p] == t[g[0]]));
            if consts_ok && eq_ok {
                filtered
                    .insert(t.clone())
                    .expect("same arity as the base relation");
            }
        }
        filtered
    };
    let d_positions = ad.d_positions();
    let index = KeyIndex::build(&filtered, &d_positions).expect("d positions in range");
    EdbCfg {
        filtered,
        index,
        transmitted: ad.transmitted_positions(),
    }
}

/// Compile a rule node's staged pipeline. `db` supplies the extensions
/// of the rule's negated subgoals — within a stratified run those are
/// EDB relations (lower strata have already been materialized).
fn compile_rule(
    rule: &mp_datalog::Rule,
    plan: &mp_rulegoal::SipPlan,
    head_label: &mp_rulegoal::GoalLabel,
    db: &Database,
) -> (RuleCfg, RuleState) {
    let head_ad = head_label.adornment();
    let head_d = head_ad.d_positions();
    let head_t = head_ad.transmitted_positions();

    let head_d_terms: Vec<Term> = head_d.iter().map(|&p| rule.head.terms[p].clone()).collect();
    let mut stage0_schema: Vec<Var> = Vec::new();
    for t in &head_d_terms {
        if let Term::Var(v) = t {
            if !stage0_schema.contains(v) {
                stage0_schema.push(v.clone());
            }
        }
    }

    // Head transmitted variables are live through every stage; negated
    // subgoal variables must also survive to the final stage, where the
    // antijoin probe reads them.
    let mut head_live: BTreeSet<Var> = head_t
        .iter()
        .filter_map(|&p| rule.head.terms[p].as_var().cloned())
        .collect();
    for n in &rule.neg {
        head_live.extend(n.vars());
    }

    let k = plan.order.len();
    let mut stages = Vec::with_capacity(k);
    let mut prev_schema = stage0_schema.clone();

    for (i, &sg_idx) in plan.order.iter().enumerate() {
        let atom = &rule.body[sg_idx];
        let ad = &plan.adornments[sg_idx];
        let tp = ad.transmitted_positions();

        // Answer-space variable map and equality checks.
        let mut ans_first: HashMap<Var, usize> = HashMap::new();
        let mut answer_eq_checks = Vec::new();
        let mut ans_vars_in_order: Vec<Var> = Vec::new();
        for (ai, &p) in tp.iter().enumerate() {
            if let Term::Var(v) = &atom.terms[p] {
                match ans_first.get(v) {
                    Some(&first) => answer_eq_checks.push((first, ai)),
                    None => {
                        ans_first.insert(v.clone(), ai);
                        ans_vars_in_order.push(v.clone());
                    }
                }
            }
        }

        // Liveness: variables needed after this stage.
        let mut live: BTreeSet<Var> = head_live.clone();
        for &later in &plan.order[i + 1..] {
            live.extend(rule.body[later].vars());
        }

        let prev_set: BTreeSet<Var> = prev_schema.iter().cloned().collect();
        let mut schema: Vec<Var> = prev_schema
            .iter()
            .filter(|v| live.contains(*v))
            .cloned()
            .collect();
        for v in &ans_vars_in_order {
            if live.contains(v) && !prev_set.contains(v) && !schema.contains(v) {
                schema.push(v.clone());
            }
        }

        // Join key: answer vars already present in the previous schema.
        let mut join_prev_cols = Vec::new();
        let mut join_answer_cols = Vec::new();
        for (pi, v) in prev_schema.iter().enumerate() {
            if let Some(&ai) = ans_first.get(v) {
                join_prev_cols.push(pi);
                join_answer_cols.push(ai);
            }
        }

        // Requests: the subgoal's d positions supplied from the previous
        // stage.
        let request_from_prev = ad
            .d_positions()
            .iter()
            .map(|&p| {
                let v = atom.terms[p]
                    .as_var()
                    .expect("class-d arguments are variables");
                prev_schema
                    .iter()
                    .position(|pv| pv == v)
                    .expect("d variables are bound by earlier stages")
            })
            .collect();

        let build = schema
            .iter()
            .map(|v| match prev_schema.iter().position(|pv| pv == v) {
                Some(pi) => StageSource::Prev(pi),
                None => StageSource::Ans(ans_first[v]),
            })
            .collect();

        stages.push(StageCfg {
            // Identity stage↔arc map; `compile_sharded` rewrites this
            // when a subgoal fans out.
            arcs: vec![i],
            schema: schema.clone(),
            request_from_prev,
            join_prev_cols,
            join_answer_cols,
            answer_eq_checks,
            build,
            answer_arity: tp.len(),
        });
        prev_schema = schema;
    }

    let head_out = head_t
        .iter()
        .map(|&p| match &rule.head.terms[p] {
            Term::Const(v) => HeadSource::Const(*v),
            Term::Var(v) => HeadSource::Var(
                prev_schema
                    .iter()
                    .position(|pv| pv == v)
                    .expect("transmitted head variables survive liveness"),
            ),
        })
        .collect();

    // Antijoin filters: project each negated subgoal's extension onto
    // its variable positions (after applying constant and repeated-
    // variable filters) and resolve those variables in the final stage
    // schema — `head_live` above keeps them alive through every stage.
    let neg_filters: Vec<NegFilter> = rule
        .neg
        .iter()
        .map(|atom| {
            let empty = Relation::new(atom.terms.len());
            let base: &Relation = db.relation(&atom.pred).unwrap_or(&empty);
            let mut const_checks: Vec<(usize, Value)> = Vec::new();
            let mut var_cols: Vec<usize> = Vec::new();
            let mut var_order: Vec<&Var> = Vec::new();
            let mut eq_checks: Vec<(usize, usize)> = Vec::new();
            for (i, t) in atom.terms.iter().enumerate() {
                match t {
                    Term::Const(v) => const_checks.push((i, *v)),
                    Term::Var(v) => match var_order.iter().position(|w| *w == v) {
                        Some(first) => eq_checks.push((var_cols[first], i)),
                        None => {
                            var_order.push(v);
                            var_cols.push(i);
                        }
                    },
                }
            }
            let mut blocked = FastSet::default();
            for t in base.iter() {
                let consts_ok = const_checks.iter().all(|(i, v)| &t[*i] == v);
                let eq_ok = eq_checks.iter().all(|&(a, b)| t[a] == t[b]);
                if consts_ok && eq_ok {
                    blocked.insert(t.project(&var_cols));
                }
            }
            let always_block = var_cols.is_empty() && !blocked.is_empty();
            let probe_cols = var_order
                .iter()
                .map(|v| {
                    prev_schema
                        .iter()
                        .position(|pv| pv == *v)
                        .expect("negated variables are bound by positive subgoals (MP011)")
                })
                .collect();
            NegFilter {
                blocked,
                probe_cols,
                always_block,
            }
        })
        .collect();

    // Mutable state with indexes prepared.
    let mut stage_bindings = Vec::with_capacity(k + 1);
    let mut first = IndexedRelation::new(stage0_schema.len());
    if let Some(s) = stages.first() {
        first.ensure_index(&s.join_prev_cols).expect("in range");
    }
    stage_bindings.push(first);
    for (i, s) in stages.iter().enumerate() {
        let mut rel = IndexedRelation::new(s.schema.len());
        if let Some(next) = stages.get(i + 1) {
            rel.ensure_index(&next.join_prev_cols).expect("in range");
        }
        stage_bindings.push(rel);
    }
    let ans_store = stages
        .iter()
        .map(|s| {
            let mut rel = IndexedRelation::new(s.answer_arity);
            rel.ensure_index(&s.join_answer_cols).expect("in range");
            rel
        })
        .collect();

    let st = RuleState {
        stage_bindings,
        ans_store,
        requested: vec![FastSet::default(); k],
        stage_closed: vec![false; k + 1],
    };
    (
        RuleCfg {
            head_d_terms,
            stage0_schema,
            stages,
            head_out,
            head_arcs: vec![0],
            head_hash_cols: Vec::new(),
            neg_filters,
        },
        st,
    )
}
