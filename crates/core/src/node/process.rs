//! Per-message process logic (§3.1) and its interaction with the §3.2
//! termination protocol.
//!
//! Completion has two granularities:
//!
//! * **per binding** — a feeder sends `EndTupleRequest(b)` once `b`'s
//!   answers are certainly complete. EDB leaves end each binding
//!   immediately; trivial-component nodes flush ends whenever they are
//!   *settled* (every tuple request they themselves issued on cross-
//!   component arcs has been ended — at that point everything derivable
//!   has been derived and forwarded, because per-arc delivery is FIFO);
//!   leaders of recursive components flush at probe conclusion (Thm 3.1).
//! * **per stream** — `EndOfRequests` cascades down (a customer promises
//!   no further bindings), `End` cascades up. Rule nodes close stage by
//!   stage: stage *l* closes when stage *l−1* is closed and subgoal *l*'s
//!   stream has ended; closing stage *l* releases `EndOfRequests` to
//!   subgoal *l+1*; closing the last stage ends the head stream. Inside
//!   a nontrivial strong component the cascade is impossible (cycles), so
//!   streams there are closed by the probe protocol instead.

use super::compile::{
    shard_hash, shard_hash_cols, Behavior, Common, EdbCfg, GoalCfg, GoalState, HeadSource, Process,
    RuleCfg, RuleState, StageSource,
};
use crate::msg::{Endpoint, Msg, Payload};
use crate::stats::Stats;
use crate::termination::TermAction;
use mp_datalog::Term;
use mp_storage::{Tuple, Value};

/// Per-message context handed to a process by the runtime.
pub struct Ctx<'a> {
    /// Outbound message buffer (routed by the runtime afterwards).
    pub out: &'a mut Vec<Msg>,
    /// Shared stats sink.
    pub stats: &'a mut Stats,
    /// True if the node's mailbox is empty (not counting the message
    /// being processed) — the `empty_queues()` input of Fig 2.
    pub mailbox_empty: bool,
    /// True when the runtime is under backpressure for this node (credit
    /// windows on its outgoing links hold stalled frames). Batch buffers
    /// flush early instead of accumulating — the graceful-degradation
    /// path of credit-based flow control: smaller frames enter the
    /// window as credits free up rather than growing node memory.
    pub pressure: bool,
    /// Event recorder for this node when tracing is enabled. `None` on
    /// the untraced path and during crash-recovery log replay (replayed
    /// messages were already recorded the first time around).
    pub tracer: Option<&'a mut mp_trace::Tracer>,
}

impl Ctx<'_> {
    /// Record a tuple stored into node-local relation `rel` (goal answer
    /// store = 0; rule stage-`l` bindings = `2l`, answer store `l` =
    /// `2l + 1`), now `size` tuples — the checker's monotone-flow input.
    fn trace_store(&mut self, rel: u32, size: u64) {
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.on_store(rel, size);
        }
    }

    /// Record a probe-wave conclusion at this leader.
    fn trace_wave(&mut self, wave: u64, epoch: u64) {
        if let Some(tr) = self.tracer.as_deref_mut() {
            tr.on_wave(wave, epoch);
        }
    }
}

impl Common {
    /// `empty_queues()` (Fig 2): mailbox drained, every tuple request
    /// issued on cross-component arcs has been ended, and no batch
    /// buffer holds an unsent message. Buffered traffic is invisible to
    /// the Mattern counters until it is flushed, so a probe wave that
    /// observed it as "idle" could conclude prematurely; instead the
    /// wave goes negative and the end-of-handle flush drains the
    /// buffers before the next wave.
    pub fn empty_queues(&self, mailbox_empty: bool) -> bool {
        mailbox_empty
            && self.pending.is_empty()
            && self.batch_buf.iter().all(Vec::is_empty)
            && self.answer_buf.iter().all(Vec::is_empty)
            && self.etr_buf.iter().all(Vec::is_empty)
    }

    /// Business left on external customer arcs: un-ended bindings, or an
    /// end-of-requests we have not yet answered with a stream end.
    pub fn unfinished_business(&self) -> bool {
        self.customers
            .iter()
            .any(|c| !c.intra && (c.subs.len() > c.ended.len() || (c.eor && !c.end_sent)))
    }

    fn send(&mut self, ctx: &mut Ctx<'_>, to: Endpoint, payload: Payload, intra: bool) {
        // Message-kind stats are counted once, by the runtime, when the
        // message is routed.
        if intra && !payload.is_protocol() {
            if let Some(t) = self.term.as_mut() {
                t.intra_sent += 1;
            }
        }
        ctx.out.push(Msg {
            from: Endpoint::Node(self.id),
            to,
            payload,
        });
    }

    fn customer_idx(&self, ep: Endpoint) -> Option<usize> {
        self.customers.iter().position(|c| c.ep == ep)
    }

    /// Note one logical item routed onto a sharded link (`arc` is a
    /// feeder arc index, or `feeders.len() + ci` for customer arc `ci`):
    /// bump the global routed-frame counter and fold this arc's running
    /// total into the max-skew gauge.
    fn note_shard_route(&mut self, ctx: &mut Ctx<'_>, arc: usize) {
        ctx.stats.shard_routed_frames += 1;
        self.shard_sent[arc] += 1;
        ctx.stats.shard_max_skew = ctx.stats.shard_max_skew.max(self.shard_sent[arc]);
    }

    fn feeder_idx(&self, ep: Endpoint) -> Option<usize> {
        let node = ep.node()?;
        self.feeders.iter().position(|f| f.node == node)
    }

    /// Forward the relation request to all feeders, once.
    fn forward_relreq(&mut self, ctx: &mut Ctx<'_>) {
        if self.relreq_forwarded {
            return;
        }
        self.relreq_forwarded = true;
        for i in 0..self.feeders.len() {
            let (node, intra) = (self.feeders[i].node, self.feeders[i].intra);
            self.send(ctx, Endpoint::Node(node), Payload::RelationRequest, intra);
        }
    }

    /// Send a tuple request to feeder `i`, tracking cross-arc pendings.
    /// With batching enabled the request is buffered and flushed (as one
    /// packaged message per arc) when the current message finishes.
    fn request_feeder(&mut self, ctx: &mut Ctx<'_>, i: usize, binding: Tuple) {
        let intra = self.feeders[i].intra;
        if !intra {
            self.pending.insert((i, binding.clone()));
        }
        if self.batching {
            self.batch_buf[i].push(binding);
            if self.batch_buf[i].len() >= self.batch_max {
                self.flush_requests_for(ctx, i);
            }
            return;
        }
        let node = self.feeders[i].node;
        self.send(
            ctx,
            Endpoint::Node(node),
            Payload::TupleRequest { binding },
            intra,
        );
    }

    /// Send an answer on customer arc `ci`. With batching enabled the
    /// tuple is buffered and flushed (as one packaged message per arc)
    /// by the flush policy below.
    fn send_answer(&mut self, ctx: &mut Ctx<'_>, ci: usize, tuple: Tuple) {
        if self.cancelled {
            // MP310: a node that acked a cancel wave never produces
            // another answer. This chokepoint covers both the scalar
            // and the batched framing (batches are fed only from here).
            return;
        }
        if self.batching {
            self.answer_buf[ci].push(tuple);
            if self.answer_buf[ci].len() >= self.batch_max {
                self.flush_answers_for(ctx, ci);
            }
            return;
        }
        let (ep, intra) = (self.customers[ci].ep, self.customers[ci].intra);
        self.send(ctx, ep, Payload::Answer { tuple }, intra);
    }

    /// End one binding on customer arc `ci` (marking it ended). With
    /// batching enabled the end is buffered; it flushes after the arc's
    /// answer buffer, so a binding's answers always precede its end.
    fn send_etr(&mut self, ctx: &mut Ctx<'_>, ci: usize, binding: Tuple) {
        self.customers[ci].ended.insert(binding.clone());
        if self.batching {
            self.etr_buf[ci].push(binding);
            if self.etr_buf[ci].len() >= self.batch_max {
                self.flush_etrs_for(ctx, ci);
            }
            return;
        }
        let (ep, intra) = (self.customers[ci].ep, self.customers[ci].intra);
        self.send(ctx, ep, Payload::EndTupleRequest { binding }, intra);
    }

    /// Flush policy, turn- and size-bounded. The size bound is enforced
    /// at buffer time: a buffer that reaches `batch_max` ships
    /// immediately (so `batch_max = 1` degenerates to exactly the scalar
    /// framing). The turn bound lives here: when the node is about to go
    /// idle (its mailbox is drained), every partial buffer drains too.
    /// One plain message for a single item, one packaged message for
    /// several. Buffering across messages is what gives the
    /// §3.1-footnote-2 packaging its volume; request pending-tracking
    /// happens at buffer time and `empty_queues` inspects the buffers,
    /// so the §3.2 protocol can never declare a node idle while it holds
    /// unsent traffic.
    fn flush_batches(&mut self, ctx: &mut Ctx<'_>) {
        if !self.batching || !(ctx.mailbox_empty || ctx.pressure) {
            return;
        }
        self.flush_batches_now(ctx);
    }

    /// Unconditionally flush every buffer (used before releasing feeders
    /// or ending streams, so an `EndOfRequests` can never overtake
    /// buffered requests and an `End` can never overtake buffered
    /// answers or per-binding ends).
    fn flush_batches_now(&mut self, ctx: &mut Ctx<'_>) {
        for i in 0..self.batch_buf.len() {
            self.flush_requests_for(ctx, i);
        }
        for ci in 0..self.customers.len() {
            self.flush_answers_for(ctx, ci);
            self.flush_etrs_for(ctx, ci);
        }
    }

    /// Ship feeder `i`'s buffered tuple requests as one frame.
    fn flush_requests_for(&mut self, ctx: &mut Ctx<'_>, i: usize) {
        if self.batch_buf[i].is_empty() {
            return;
        }
        let bindings = std::mem::take(&mut self.batch_buf[i]);
        let (node, intra) = (self.feeders[i].node, self.feeders[i].intra);
        let payload = if bindings.len() == 1 {
            Payload::TupleRequest {
                binding: bindings.into_iter().next().expect("one binding"),
            }
        } else {
            Payload::TupleRequestBatch { bindings }
        };
        self.send(ctx, Endpoint::Node(node), payload, intra);
    }

    /// Ship customer `ci`'s buffered answers as one frame.
    fn flush_answers_for(&mut self, ctx: &mut Ctx<'_>, ci: usize) {
        if self.answer_buf[ci].is_empty() {
            return;
        }
        let tuples = std::mem::take(&mut self.answer_buf[ci]);
        let (ep, intra) = (self.customers[ci].ep, self.customers[ci].intra);
        let payload = if tuples.len() == 1 {
            Payload::Answer {
                tuple: tuples.into_iter().next().expect("one tuple"),
            }
        } else {
            Payload::AnswerBatch { tuples }
        };
        self.send(ctx, ep, payload, intra);
    }

    /// Ship customer `ci`'s buffered per-binding ends as one frame —
    /// always after that arc's buffered answers, so a binding's answers
    /// precede its end on the wire.
    fn flush_etrs_for(&mut self, ctx: &mut Ctx<'_>, ci: usize) {
        if self.etr_buf[ci].is_empty() {
            return;
        }
        self.flush_answers_for(ctx, ci);
        let bindings = std::mem::take(&mut self.etr_buf[ci]);
        let (ep, intra) = (self.customers[ci].ep, self.customers[ci].intra);
        let payload = if bindings.len() == 1 {
            Payload::EndTupleRequest {
                binding: bindings.into_iter().next().expect("one binding"),
            }
        } else {
            Payload::EndTupleRequestBatch { bindings }
        };
        self.send(ctx, ep, payload, intra);
    }

    /// Flush per-binding ends on all cross customer arcs.
    fn flush_etrs(&mut self, ctx: &mut Ctx<'_>) {
        for ci in 0..self.customers.len() {
            if self.customers[ci].intra {
                continue;
            }
            if self.customers[ci].subs.len() == self.customers[ci].ended.len() {
                continue;
            }
            let to_end: Vec<Tuple> = self.customers[ci]
                .subs
                .iter()
                .filter(|b| !self.customers[ci].ended.contains(*b))
                .cloned()
                .collect();
            for b in to_end {
                self.send_etr(ctx, ci, b);
            }
        }
    }

    /// Send `EndOfRequests` to every cross feeder, once.
    fn release_feeders(&mut self, ctx: &mut Ctx<'_>) {
        if self.eor_sent_to_feeders {
            return;
        }
        self.flush_batches_now(ctx);
        self.eor_sent_to_feeders = true;
        for i in 0..self.feeders.len() {
            if !self.feeders[i].intra {
                let node = self.feeders[i].node;
                self.send(ctx, Endpoint::Node(node), Payload::EndOfRequests, false);
            }
        }
    }

    /// Send the stream end on every cross customer arc whose customer has
    /// sent end-of-requests.
    fn end_streams(&mut self, ctx: &mut Ctx<'_>) {
        self.flush_batches_now(ctx);
        for ci in 0..self.customers.len() {
            let c = &self.customers[ci];
            if c.intra || !c.eor || c.end_sent {
                continue;
            }
            let ep = c.ep;
            self.customers[ci].end_sent = true;
            self.send(ctx, ep, Payload::End, false);
        }
    }

    /// All cross customers have sent end-of-requests.
    fn all_customers_released(&self) -> bool {
        self.customers.iter().filter(|c| !c.intra).all(|c| c.eor)
    }
}

impl Process {
    /// Handle one message. The runtime routes `ctx.out` afterwards.
    pub fn handle(&mut self, msg: Msg, ctx: &mut Ctx<'_>) {
        ctx.stats.messages_processed += 1;
        let from = msg.from;
        // A cancelled node drains everything without processing it: no
        // joins, no new requests, no probe-wave participation (a
        // suppressed `conclude` would otherwise leave the leader
        // re-probing forever), and — the MP310 obligation — no further
        // answers. The frame still counts as processed so the Mattern
        // counters and the transport's acks stay honest. Only `Cancel`
        // itself is still inspected, for duplicate accounting.
        if self.common.cancelled && !matches!(msg.payload, Payload::Cancel { .. }) {
            return;
        }
        match msg.payload {
            Payload::Shutdown => return,
            Payload::EndRequest { wave, epoch } => {
                let empty = self.common.empty_queues(ctx.mailbox_empty);
                let id = self.common.id;
                if let Some(t) = self.common.term.as_mut() {
                    t.on_end_request(id, wave, epoch, empty, ctx.out);
                } else {
                    ctx.stats.stale_dropped += 1;
                }
            }
            Payload::EndNegative { wave, epoch } => {
                let empty = self.common.empty_queues(ctx.mailbox_empty);
                let unfinished = self.common.unfinished_business();
                let id = self.common.id;
                let action = match (from.node(), self.common.term.as_mut()) {
                    (Some(child), Some(t)) => {
                        t.on_end_negative(id, child, wave, epoch, empty, unfinished, ctx.out)
                    }
                    _ => TermAction::Stale,
                };
                self.finish_protocol_step(action, ctx);
            }
            Payload::EndConfirmed {
                wave,
                epoch,
                sent,
                received,
            } => {
                let empty = self.common.empty_queues(ctx.mailbox_empty);
                let unfinished = self.common.unfinished_business();
                let id = self.common.id;
                let action = match (from.node(), self.common.term.as_mut()) {
                    (Some(child), Some(t)) => t.on_end_confirmed(
                        id, child, wave, epoch, sent, received, empty, unfinished, ctx.out,
                    ),
                    _ => TermAction::Stale,
                };
                self.finish_protocol_step(action, ctx);
            }
            Payload::Reborn { .. } => {
                let empty = self.common.empty_queues(ctx.mailbox_empty);
                let unfinished = self.common.unfinished_business();
                let id = self.common.id;
                let action = match (from.node(), self.common.term.as_mut()) {
                    (Some(child), Some(t)) => t.on_reborn(id, child, empty, unfinished, ctx.out),
                    _ => TermAction::Stale,
                };
                self.finish_protocol_step(action, ctx);
            }
            Payload::SccFinished => {
                self.on_scc_finished(ctx);
            }
            Payload::Cancel { wave, epoch } => {
                self.on_cancel(wave, epoch, ctx);
            }
            work => {
                // Any non-protocol message is work: it resets idleness and
                // counts toward the intra-component receive counter.
                let from_intra = match from {
                    Endpoint::Engine => false,
                    Endpoint::Node(n) => self
                        .common
                        .customers
                        .iter()
                        .find(|c| c.ep == Endpoint::Node(n))
                        .map(|c| c.intra)
                        .or_else(|| {
                            self.common
                                .feeders
                                .iter()
                                .find(|f| f.node == n)
                                .map(|f| f.intra)
                        })
                        .unwrap_or(false),
                };
                if let Some(t) = self.common.term.as_mut() {
                    t.on_work();
                    if from_intra {
                        t.intra_recv += 1;
                    }
                }
                self.handle_work(from, work, ctx);
            }
        }
        self.common.flush_batches(ctx);
        self.post_step(ctx);
        // `post_step` may have buffered per-binding ends (trivial nodes
        // flush ends once settled); drain them before going idle.
        self.common.flush_batches(ctx);
    }

    /// Idle-time nudge from the runtime, equivalent to the tail of
    /// [`Process::handle`] without a message. The threaded fault path
    /// needs it: transport frames (acks, retransmissions) drain from the
    /// same queue as logical messages, so the "last message left the
    /// mailbox empty" moment that triggers batch flushes and leader
    /// probe (re-)origination can pass while `handle` sees a non-empty
    /// queue — and with no further logical traffic, nothing else would
    /// ever re-check. Safe to call at any time: every action inside is
    /// guarded by the same idleness conditions `handle` uses.
    pub fn poke(&mut self, ctx: &mut Ctx<'_>) {
        self.common.flush_batches(ctx);
        self.post_step(ctx);
        self.common.flush_batches(ctx);
    }

    /// Common tail of the protocol-reply handlers: count stale drops,
    /// conclude on a successful probe.
    fn finish_protocol_step(&mut self, action: TermAction, ctx: &mut Ctx<'_>) {
        match action {
            TermAction::Stale => ctx.stats.stale_dropped += 1,
            TermAction::Conclude => self.conclude(ctx),
            TermAction::None => {}
        }
    }

    fn handle_work(&mut self, from: Endpoint, payload: Payload, ctx: &mut Ctx<'_>) {
        match payload {
            Payload::RelationRequest => {
                if self.common.customer_idx(from).is_none() {
                    ctx.stats.malformed_dropped += 1;
                    return;
                }
                self.common.forward_relreq(ctx);
            }
            Payload::TupleRequest { binding } => {
                let Some(ci) = self.common.customer_idx(from) else {
                    ctx.stats.malformed_dropped += 1;
                    return;
                };
                self.on_tuple_request(ci, binding, ctx);
            }
            Payload::TupleRequestBatch { bindings } => {
                let Some(ci) = self.common.customer_idx(from) else {
                    ctx.stats.malformed_dropped += 1;
                    return;
                };
                for binding in bindings {
                    self.on_tuple_request(ci, binding, ctx);
                }
            }
            Payload::Answer { tuple } => {
                let Some(fi) = self.common.feeder_idx(from) else {
                    ctx.stats.malformed_dropped += 1;
                    return;
                };
                self.on_answer(fi, tuple, ctx);
            }
            Payload::AnswerBatch { tuples } => {
                let Some(fi) = self.common.feeder_idx(from) else {
                    ctx.stats.malformed_dropped += 1;
                    return;
                };
                for tuple in tuples {
                    self.on_answer(fi, tuple, ctx);
                }
            }
            Payload::EndTupleRequest { binding } => {
                let Some(fi) = self.common.feeder_idx(from) else {
                    ctx.stats.malformed_dropped += 1;
                    return;
                };
                self.common.pending.remove(&(fi, binding));
            }
            Payload::EndTupleRequestBatch { bindings } => {
                let Some(fi) = self.common.feeder_idx(from) else {
                    ctx.stats.malformed_dropped += 1;
                    return;
                };
                for binding in bindings {
                    self.common.pending.remove(&(fi, binding));
                }
            }
            Payload::End => {
                let Some(fi) = self.common.feeder_idx(from) else {
                    ctx.stats.malformed_dropped += 1;
                    return;
                };
                self.common.feeder_end[fi] = true;
                if self.common.term.is_none() {
                    match &mut self.behavior {
                        Behavior::Rule { cfg, st } => {
                            // Stream end from one shard of a subgoal; the
                            // stage closes once every shard of that
                            // subgoal (every arc sharing the slot) ended.
                            let slot = self.common.feeders[fi].slot;
                            if cfg.stages[slot]
                                .arcs
                                .iter()
                                .all(|&a| self.common.feeder_end[a])
                            {
                                rule_close_stage(cfg, st, &mut self.common, slot + 1, ctx);
                            }
                        }
                        Behavior::Goal { .. } => {
                            goal_maybe_end(&mut self.common, ctx);
                        }
                        Behavior::CycleRef { .. } | Behavior::Edb { .. } => {}
                    }
                }
                // Members of nontrivial components receive post-finish
                // stream ends from released feeders; nothing to do.
            }
            Payload::EndOfRequests => {
                let Some(ci) = self.common.customer_idx(from) else {
                    ctx.stats.malformed_dropped += 1;
                    return;
                };
                self.common.customers[ci].eor = true;
                if self.common.term.is_none() {
                    match &mut self.behavior {
                        Behavior::Edb { .. } => {
                            // Settled by construction: end the stream.
                            self.common.end_streams(ctx);
                        }
                        Behavior::Goal { .. } => {
                            if self.common.all_customers_released() {
                                self.common.release_feeders(ctx);
                                goal_maybe_end(&mut self.common, ctx);
                            }
                        }
                        Behavior::Rule { cfg, st } => {
                            // Seeds arrive from every parent shard; the
                            // request stream is only over once each of
                            // them has promised no further bindings.
                            if self.common.customers.iter().all(|c| c.eor) {
                                rule_close_stage(cfg, st, &mut self.common, 0, ctx);
                            }
                        }
                        Behavior::CycleRef { .. } => {
                            // Cycle-ref customers are intra-component, so
                            // a cross end-of-requests is misrouted.
                            ctx.stats.malformed_dropped += 1;
                        }
                    }
                }
                // For a component leader the end-of-requests is recorded;
                // the probe protocol concludes the stream.
            }
            // Protocol payloads are dispatched in `handle`; anything
            // reaching this arm is a misrouted frame.
            _ => ctx.stats.malformed_dropped += 1,
        }
    }

    /// Dispatch one answer tuple from feeder `fi` to the behavior.
    fn on_answer(&mut self, fi: usize, tuple: Tuple, ctx: &mut Ctx<'_>) {
        match &mut self.behavior {
            Behavior::Goal { cfg, st } => goal_on_answer(cfg, st, &mut self.common, tuple, ctx),
            Behavior::Rule { cfg, st } => rule_on_answer(cfg, st, &mut self.common, fi, tuple, ctx),
            Behavior::CycleRef { .. } => {
                // Relay to the rule parent; the ancestor already
                // performed the selection by subscription.
                self.common.send_answer(ctx, 0, tuple);
            }
            Behavior::Edb { .. } => {
                // EDB leaves have no feeders; only a misrouted message
                // can land here.
                ctx.stats.malformed_dropped += 1;
            }
        }
    }

    /// Dispatch one tuple request binding to the behavior.
    fn on_tuple_request(&mut self, ci: usize, binding: Tuple, ctx: &mut Ctx<'_>) {
        match &mut self.behavior {
            Behavior::Goal { cfg, st } => {
                goal_on_request(cfg, st, &mut self.common, ci, binding, ctx)
            }
            Behavior::Edb { cfg } => edb_on_request(cfg, &mut self.common, ci, binding, ctx),
            Behavior::Rule { cfg, st } => {
                rule_on_request(cfg, st, &mut self.common, ci, binding, ctx)
            }
            Behavior::CycleRef { cfg } => {
                let _ = cfg;
                self.common.customers[ci].subs.insert(binding.clone());
                self.common.request_feeder(ctx, 0, binding);
            }
        }
    }

    /// After every message: flush per-binding ends when settled (trivial
    /// nodes), or give the leader a chance to originate a probe.
    fn post_step(&mut self, ctx: &mut Ctx<'_>) {
        if self.common.cancelled {
            // No per-binding ends, no probe origination: the component
            // is being drained, not concluded.
            return;
        }
        match &self.common.term {
            None => {
                if self.common.pending.is_empty() {
                    self.common.flush_etrs(ctx);
                }
            }
            Some(_) => {
                let empty = self.common.empty_queues(ctx.mailbox_empty);
                let unfinished = self.common.unfinished_business();
                let id = self.common.id;
                if let Some(t) = self.common.term.as_mut() {
                    t.maybe_originate(id, empty, unfinished, ctx.out);
                }
            }
        }
    }

    /// Leader probe conclusion: the whole component is idle (Thm 3.1), so
    /// every binding received so far is complete.
    fn conclude(&mut self, ctx: &mut Ctx<'_>) {
        if self.common.cancelled {
            // A wave already in flight when the cancel landed may still
            // conclude; the conclusion is moot — nothing may be flushed
            // or ended on a component that is being drained.
            return;
        }
        ctx.stats.probe_waves += self
            .common
            .term
            .as_ref()
            .map(|t| t.waves_completed)
            .unwrap_or(0);
        if let Some((w, e)) = self.common.term.as_ref().map(|t| (t.wave, t.epoch)) {
            ctx.trace_wave(w, e);
        }
        if let Some(t) = self.common.term.as_mut() {
            t.waves_completed = 0;
        }
        self.common.flush_etrs(ctx);
        if self.common.all_customers_released() {
            self.common.end_streams(ctx);
            self.common.release_feeders(ctx);
            // Broadcast SccFinished down the BFST.
            let children: Vec<_> = self
                .common
                .term
                .as_ref()
                .map(|t| t.bfst_children.clone())
                .unwrap_or_default();
            if let Some(t) = self.common.term.as_mut() {
                t.finished = true;
            }
            for c in children {
                self.common
                    .send(ctx, Endpoint::Node(c), Payload::SccFinished, true);
            }
        }
    }

    /// Cancel wave (resource governance): first delivery cancels the
    /// node — buffered traffic is *discarded* (never flushed: a
    /// cancelled node must not produce more answers, and unsent
    /// requests are work the budget already declined) — and the wave is
    /// forwarded down the BFST once, so cancellation reaches recursive
    /// components even if an engine broadcast frame is delayed by the
    /// transport. Duplicates (engine broadcast + BFST forward + log
    /// replay after a crash) are dropped.
    fn on_cancel(&mut self, wave: u64, epoch: u64, ctx: &mut Ctx<'_>) {
        if self.common.cancelled {
            ctx.stats.stale_dropped += 1;
            return;
        }
        self.cancel_local();
        let children: Vec<_> = self
            .common
            .term
            .as_ref()
            .map(|t| t.bfst_children.clone())
            .unwrap_or_default();
        for c in children {
            self.common.send(
                ctx,
                Endpoint::Node(c),
                Payload::Cancel { wave, epoch },
                true,
            );
        }
    }

    /// Locally observe a tripped budget at an activation boundary:
    /// identical to receiving the cancel wave, minus the BFST forward
    /// (the engine's broadcast still reaches every node and is then
    /// dropped here as a duplicate). Lets pool workers stop deriving
    /// within one activation instead of waiting for the wave to be
    /// scheduled through a deep mailbox.
    pub fn cancel_local(&mut self) {
        if self.common.cancelled {
            return;
        }
        self.common.cancelled = true;
        for b in &mut self.common.batch_buf {
            b.clear();
        }
        for b in &mut self.common.answer_buf {
            b.clear();
        }
        for b in &mut self.common.etr_buf {
            b.clear();
        }
    }

    /// Member cleanup after the leader concluded.
    fn on_scc_finished(&mut self, ctx: &mut Ctx<'_>) {
        let children: Vec<_> = self
            .common
            .term
            .as_ref()
            .map(|t| t.bfst_children.clone())
            .unwrap_or_default();
        if let Some(t) = self.common.term.as_mut() {
            if t.finished {
                return;
            }
            t.finished = true;
        }
        for c in children {
            self.common
                .send(ctx, Endpoint::Node(c), Payload::SccFinished, true);
        }
        self.common.release_feeders(ctx);
    }

    /// Recovery hook: stamp this (freshly rebuilt) process as restart
    /// generation `epoch` and announce the rebirth to the BFST parent,
    /// which treats it as a negative reply for any probe wave in flight.
    /// The epoch tag then prevents this node's pre-crash protocol
    /// traffic — still possible in the restored mailbox — from being
    /// accepted into post-crash waves.
    pub fn restarted(&mut self, epoch: u64, out: &mut Vec<Msg>) {
        let id = self.common.id;
        if let Some(t) = self.common.term.as_mut() {
            t.epoch = epoch;
            if let Some(parent) = t.bfst_parent {
                out.push(Msg {
                    from: Endpoint::Node(id),
                    to: Endpoint::Node(parent),
                    payload: Payload::Reborn { epoch },
                });
            }
        }
    }
}

// --------------------------------------------------------------------
// Goal nodes
// --------------------------------------------------------------------

fn goal_on_request(
    cfg: &GoalCfg,
    st: &mut GoalState,
    common: &mut Common,
    ci: usize,
    binding: Tuple,
    ctx: &mut Ctx<'_>,
) {
    if binding.arity() != cfg.d_in_transmitted.len() {
        ctx.stats.malformed_dropped += 1;
        return;
    }
    if !common.customers[ci].subs.insert(binding.clone()) {
        return; // duplicate subscription (customers deduplicate; defensive)
    }
    st.subs_by_binding
        .entry(binding.clone())
        .or_default()
        .push(ci);

    // Backfill already-stored answers matching this binding.
    let matching: Vec<Tuple> = st
        .answers
        .probe_cloned(&cfg.d_in_transmitted, binding.values());
    for t in matching {
        common.send_answer(ctx, ci, t);
    }

    // First sight of this binding anywhere: fan out to the rule children.
    if st.bindings.insert(binding.clone()) {
        for i in 0..common.feeders.len() {
            common.request_feeder(ctx, i, binding.clone());
        }
    }
}

fn goal_on_answer(
    cfg: &GoalCfg,
    st: &mut GoalState,
    common: &mut Common,
    tuple: Tuple,
    ctx: &mut Ctx<'_>,
) {
    match st.answers.insert(tuple.clone()) {
        Ok(true) => {}
        Ok(false) => return, // duplicate: "deletion of duplicates in cycles
        // ensures that nodes become idle when the computation is
        // complete" (§1.2)
        Err(_) => {
            // Arity mismatch: the schema is checked at compile time, so
            // only a corrupted or misrouted frame can get here. Drop it.
            ctx.stats.malformed_dropped += 1;
            return;
        }
    }
    ctx.stats.stored_tuples += 1;
    ctx.stats.goal_stored += 1;
    ctx.stats.max_relation_size = ctx.stats.max_relation_size.max(st.answers.len() as u64);
    ctx.trace_store(0, st.answers.len() as u64);
    let subscribers = with_key(&tuple, &cfg.d_in_transmitted, |key| {
        st.subs_by_binding.get(key).cloned()
    });
    if let Some(subscribers) = subscribers {
        for ci in subscribers {
            common.send_answer(ctx, ci, tuple.clone());
        }
    }
}

/// Trivial goal node: end the stream once all feeders ended and the
/// customer released us.
fn goal_maybe_end(common: &mut Common, ctx: &mut Ctx<'_>) {
    if common.all_customers_released()
        && common.feeder_end.iter().all(|&e| e)
        && common.pending.is_empty()
    {
        common.flush_etrs(ctx);
        common.end_streams(ctx);
    }
}

// --------------------------------------------------------------------
// EDB leaves
// --------------------------------------------------------------------

fn edb_on_request(cfg: &EdbCfg, common: &mut Common, ci: usize, binding: Tuple, ctx: &mut Ctx<'_>) {
    common.customers[ci].subs.insert(binding.clone());
    ctx.stats.edb_lookups += 1;
    let mut seen = mp_storage::Relation::new(cfg.transmitted.len());
    let rows: Vec<&Tuple> = cfg
        .index
        .probe_in(&cfg.filtered, binding.values())
        .map(|r| &cfg.filtered.rows()[r as usize])
        .collect();
    for row in rows {
        let t = row.project(&cfg.transmitted);
        if seen.insert(t.clone()).expect("projection arity") {
            common.send_answer(ctx, ci, t);
        }
    }
    // The EDB is static: the binding is complete immediately.
    common.send_etr(ctx, ci, binding);
}

// --------------------------------------------------------------------
// Rule nodes
// --------------------------------------------------------------------

fn rule_on_request(
    cfg: &RuleCfg,
    st: &mut RuleState,
    common: &mut Common,
    ci: usize,
    binding: Tuple,
    ctx: &mut Ctx<'_>,
) {
    if binding.arity() != cfg.head_d_terms.len() {
        ctx.stats.malformed_dropped += 1;
        return;
    }
    common.customers[ci].subs.insert(binding.clone());
    // Unify the binding with the instance head's d-position terms.
    let Some(seed) = unify_binding(&cfg.head_d_terms, &cfg.stage0_schema, &binding) else {
        return; // head constants reject this binding
    };
    if st.stage_bindings[0]
        .insert(seed.clone())
        .expect("stage-0 arity")
    {
        ctx.stats.stored_tuples += 1;
        ctx.trace_store(0, st.stage_bindings[0].len() as u64);
        rule_propagate(cfg, st, common, 0, seed, ctx);
    }
}

/// Match a binding (values for the head label's `d` positions) against
/// the instance head terms; produce the stage-0 tuple.
fn unify_binding(
    head_d_terms: &[Term],
    schema: &[mp_datalog::Var],
    binding: &Tuple,
) -> Option<Tuple> {
    debug_assert_eq!(head_d_terms.len(), binding.arity());
    let mut values: Vec<Option<Value>> = vec![None; schema.len()];
    for (t, v) in head_d_terms.iter().zip(binding.values()) {
        match t {
            Term::Const(c) => {
                if c != v {
                    return None;
                }
            }
            Term::Var(var) => {
                let i = schema
                    .iter()
                    .position(|s| s == var)
                    .expect("stage-0 schema covers bound head vars");
                match &values[i] {
                    Some(existing) if existing != v => return None,
                    _ => values[i] = Some(*v),
                }
            }
        }
    }
    Some(values.into_iter().map(|v| v.expect("all bound")).collect())
}

/// A new tuple landed in stage `level`; push it through the pipeline.
/// Project `t` onto `cols` into a stack buffer and run `f` with the
/// borrowed key slice — the engine's per-probe form. Avoids allocating
/// a key [`Tuple`] on every join/semijoin probe; falls back to a heap
/// projection for the (unseen in practice) arity > 16 case.
#[inline]
fn with_key<R>(t: &Tuple, cols: &[usize], f: impl FnOnce(&[Value]) -> R) -> R {
    if cols.len() <= 16 {
        let mut buf = [Value::int(0); 16];
        for (i, &c) in cols.iter().enumerate() {
            buf[i] = t[c];
        }
        f(&buf[..cols.len()])
    } else {
        f(t.project(cols).values())
    }
}

fn rule_propagate(
    cfg: &RuleCfg,
    st: &mut RuleState,
    common: &mut Common,
    level: usize,
    tuple: Tuple,
    ctx: &mut Ctx<'_>,
) {
    let k = cfg.stages.len();
    if level == k {
        emit_head(cfg, common, &tuple, ctx);
        return;
    }
    let stage = &cfg.stages[level];

    // Issue the tuple request for the next subgoal, hash-routed to the
    // shard that owns the binding when the subgoal is replicated.
    let req = tuple.project(&stage.request_from_prev);
    if st.requested[level].insert(req.clone()) {
        let arc = if stage.arcs.len() == 1 {
            stage.arcs[0]
        } else {
            let pick = (shard_hash(req.values()) % stage.arcs.len() as u64) as usize;
            let arc = stage.arcs[pick];
            common.note_shard_route(ctx, arc);
            arc
        };
        common.request_feeder(ctx, arc, req);
    }

    // Join against the already-stored answers of that subgoal.
    ctx.stats.join_probes += 1;
    let matches: Vec<Tuple> = with_key(&tuple, &stage.join_prev_cols, |key| {
        st.ans_store[level].probe_cloned(&stage.join_answer_cols, key)
    });
    for ans in matches {
        let new_tuple: Tuple = stage
            .build
            .iter()
            .map(|src| match src {
                StageSource::Prev(i) => tuple[*i],
                StageSource::Ans(i) => ans[*i],
            })
            .collect();
        if st.stage_bindings[level + 1]
            .insert(new_tuple.clone())
            .expect("stage arity")
        {
            ctx.stats.stored_tuples += 1;
            let sz = st.stage_bindings[level + 1].len() as u64;
            ctx.stats.max_relation_size = ctx.stats.max_relation_size.max(sz);
            ctx.stats.max_stage_relation = ctx.stats.max_stage_relation.max(sz);
            ctx.trace_store(2 * (level as u32 + 1), sz);
            rule_propagate(cfg, st, common, level + 1, new_tuple, ctx);
        }
    }
}

fn rule_on_answer(
    cfg: &RuleCfg,
    st: &mut RuleState,
    common: &mut Common,
    feeder_idx: usize,
    tuple: Tuple,
    ctx: &mut Ctx<'_>,
) {
    // Every arc of a sharded subgoal shares the subgoal's stage slot.
    let level = common.feeders[feeder_idx].slot;
    let Some(stage) = cfg.stages.get(level) else {
        ctx.stats.malformed_dropped += 1;
        return;
    };
    if tuple.arity() != stage.answer_arity {
        ctx.stats.malformed_dropped += 1;
        return;
    }
    // Repeated-variable consistency (feeders guarantee this; checked
    // defensively because a violation would silently corrupt joins).
    for &(a, b) in &stage.answer_eq_checks {
        if tuple[a] != tuple[b] {
            debug_assert!(false, "inconsistent answer from feeder");
            return;
        }
    }
    match st.ans_store[level].insert(tuple.clone()) {
        Ok(true) => {}
        Ok(false) | Err(_) => return,
    }
    ctx.stats.stored_tuples += 1;
    ctx.stats.max_relation_size = ctx
        .stats
        .max_relation_size
        .max(st.ans_store[level].len() as u64);
    ctx.trace_store(2 * level as u32 + 1, st.ans_store[level].len() as u64);

    // Join with the previous stage's accumulated bindings.
    ctx.stats.join_probes += 1;
    let prevs: Vec<Tuple> = with_key(&tuple, &stage.join_answer_cols, |key| {
        st.stage_bindings[level].probe_cloned(&stage.join_prev_cols, key)
    });
    for prev in prevs {
        let new_tuple: Tuple = stage
            .build
            .iter()
            .map(|src| match src {
                StageSource::Prev(i) => prev[*i],
                StageSource::Ans(i) => tuple[*i],
            })
            .collect();
        if st.stage_bindings[level + 1]
            .insert(new_tuple.clone())
            .expect("stage arity")
        {
            ctx.stats.stored_tuples += 1;
            let sz = st.stage_bindings[level + 1].len() as u64;
            ctx.stats.max_relation_size = ctx.stats.max_relation_size.max(sz);
            ctx.stats.max_stage_relation = ctx.stats.max_stage_relation.max(sz);
            ctx.trace_store(2 * (level as u32 + 1), sz);
            rule_propagate(cfg, st, common, level + 1, new_tuple, ctx);
        }
    }
}

fn emit_head(cfg: &RuleCfg, common: &mut Common, final_tuple: &Tuple, ctx: &mut Ctx<'_>) {
    // Antijoin: a final-stage tuple matching any negated subgoal's
    // materialized extension is suppressed (stratified negation).
    for nf in &cfg.neg_filters {
        if nf.always_block {
            return;
        }
        let probe: Tuple = nf.probe_cols.iter().map(|&c| final_tuple[c]).collect();
        if nf.blocked.contains(&probe) {
            return;
        }
    }
    let answer: Tuple = cfg
        .head_out
        .iter()
        .map(|src| match src {
            HeadSource::Const(v) => *v,
            HeadSource::Var(i) => final_tuple[*i],
        })
        .collect();
    ctx.stats.derived_tuples += 1;
    // Hash-route the answer to the parent-goal shard that owns its
    // binding (the projection on the parent's `d` columns hashes
    // identically to the request binding it responds to).
    let ci = if cfg.head_arcs.len() == 1 {
        cfg.head_arcs[0]
    } else {
        let h = shard_hash_cols(&answer, &cfg.head_hash_cols);
        let ci = cfg.head_arcs[(h % cfg.head_arcs.len() as u64) as usize];
        common.note_shard_route(ctx, common.feeders.len() + ci);
        ci
    };
    common.send_answer(ctx, ci, answer);
}

/// Close stage `level` (0 = the head's end-of-requests; `l` = subgoal
/// `l`'s stream ended), releasing the next subgoal or ending the head
/// stream. Only runs on trivial-component rule nodes — recursive rule
/// nodes are closed by the probe protocol.
fn rule_close_stage(
    cfg: &RuleCfg,
    st: &mut RuleState,
    common: &mut Common,
    level: usize,
    ctx: &mut Ctx<'_>,
) {
    debug_assert!(
        level == 0 || st.stage_closed[level - 1],
        "a subgoal can only end after we released it, which required the \
         previous stage to be closed"
    );
    if st.stage_closed[level] {
        return;
    }
    st.stage_closed[level] = true;
    let k = cfg.stages.len();
    if level < k {
        // All requests to subgoal `level+1` have been issued; flush any
        // buffered ones so the release cannot overtake them. Every shard
        // of the subgoal is released.
        common.flush_batches_now(ctx);
        for a in cfg.stages[level].arcs.clone() {
            let (node, intra) = (common.feeders[a].node, common.feeders[a].intra);
            debug_assert!(!intra, "trivial rule nodes have only cross feeders");
            common.send(ctx, Endpoint::Node(node), Payload::EndOfRequests, intra);
        }
    } else {
        // Head stream complete.
        common.flush_etrs(ctx);
        common.end_streams(ctx);
    }
}
