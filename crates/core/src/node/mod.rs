//! Node processes: each rule/goal graph node compiled into a process
//! with its own temporary relations (§2.2: "we interpret each node as a
//! processor that performs a relational computation"; §3.1: "it is
//! appropriate for rule nodes to store their subgoals' temporary
//! relations, assuming no shared memory").

mod compile;
mod process;

pub use compile::{
    shard_hash, shard_hash_cols, Behavior, Common, CustState, CycleCfg, EdbCfg, FeederCfg, GoalCfg,
    GoalState, HeadSource, Network, Process, RuleCfg, RuleState, ShardPlan, StageCfg, StageSource,
};
pub use process::Ctx;
