//! Runtimes executing the process network.

pub mod explore;
pub mod govern;
mod sim;
mod thread;

pub use explore::{explore, ExploreConfig, ExploreReport, ScheduleViolation};
pub use govern::{CancelToken, Governor, NodeUsage, QueryBudget, Trip};
pub use sim::{Schedule, SimOutcome, SimRuntime};
pub use thread::{ThreadOutcome, ThreadRuntime};

use crate::msg::{Endpoint, Payload};
use mp_storage::Tuple;
use mp_trace::MsgKind;

/// Ring capacity for recorded events (per run). Large enough for every
/// canonical workload; overruns are counted, not silently lost, and a
/// lossy trace is rejected by the checker.
pub(crate) const TRACE_RING_CAPACITY: usize = 1 << 18;

/// Map an endpoint to its trace actor id: node `i` -> `i`, the engine ->
/// `n_nodes` (the last actor).
pub(crate) fn trace_actor(ep: Endpoint, n_nodes: usize) -> u32 {
    match ep.node() {
        Some(id) => id as u32,
        None => n_nodes as u32,
    }
}

/// Build the typed governance error for a tripped run, after the cancel
/// wave drained the network. Shared by the simulator and the pool so
/// both runtimes surface identical error shapes.
pub(crate) fn budget_error(
    t: govern::Trip,
    governor: &govern::Governor,
    partial: Vec<mp_storage::Tuple>,
    accounting: Vec<govern::NodeUsage>,
    cancel_waves: u64,
) -> RuntimeError {
    match t {
        govern::Trip::Cancelled => RuntimeError::Cancelled {
            partial,
            accounting,
            cancel_waves,
        },
        govern::Trip::Messages | govern::Trip::Bytes => {
            let (limit, used) = governor.trip_report(t);
            RuntimeError::BudgetExceeded {
                resource: t,
                limit,
                used,
                partial,
                accounting,
                cancel_waves,
            }
        }
    }
}

/// Describe a payload for the trace: `(kind, logical items, wave,
/// epoch)`. Wave/epoch are 0 for non-termination payloads.
pub(crate) fn describe_payload(p: &Payload) -> (MsgKind, u64, u64, u64) {
    match p {
        Payload::RelationRequest => (MsgKind::RelationRequest, 1, 0, 0),
        Payload::TupleRequest { .. } => (MsgKind::TupleRequest, 1, 0, 0),
        Payload::TupleRequestBatch { bindings } => {
            (MsgKind::TupleRequestBatch, bindings.len() as u64, 0, 0)
        }
        Payload::EndOfRequests => (MsgKind::EndOfRequests, 1, 0, 0),
        Payload::Answer { .. } => (MsgKind::Answer, 1, 0, 0),
        Payload::AnswerBatch { tuples } => (MsgKind::AnswerBatch, tuples.len() as u64, 0, 0),
        Payload::EndTupleRequest { .. } => (MsgKind::EndTupleRequest, 1, 0, 0),
        Payload::EndTupleRequestBatch { bindings } => {
            (MsgKind::EndTupleRequestBatch, bindings.len() as u64, 0, 0)
        }
        Payload::End => (MsgKind::End, 1, 0, 0),
        Payload::EndRequest { wave, epoch } => (MsgKind::EndRequest, 1, *wave, *epoch),
        Payload::EndNegative { wave, epoch } => (MsgKind::EndNegative, 1, *wave, *epoch),
        Payload::EndConfirmed { wave, epoch, .. } => (MsgKind::EndConfirmed, 1, *wave, *epoch),
        Payload::SccFinished => (MsgKind::SccFinished, 1, 0, 0),
        Payload::Reborn { epoch } => (MsgKind::Reborn, 1, 0, *epoch),
        Payload::Cancel { wave, epoch } => (MsgKind::Cancel, 1, *wave, *epoch),
        Payload::Shutdown => (MsgKind::Shutdown, 1, 0, 0),
    }
}

/// Errors raised while running a network. Every variant is a graceful
/// failure: no runtime code path panics on a received message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The step budget was exhausted (runaway computation guard).
    Diverged {
        /// Steps executed.
        steps: u64,
    },
    /// The network went quiescent without delivering the final `End` —
    /// a termination-protocol failure (should be impossible; kept as a
    /// first-class error so tests can assert it never happens).
    NoTermination,
    /// The threaded runtime timed out waiting for the final `End`.
    /// Carries enough of the abort-time state to diagnose the hang.
    Timeout {
        /// The configured timeout in milliseconds.
        budget_millis: u64,
        /// Wall-clock time actually elapsed at abort, in milliseconds.
        elapsed_millis: u64,
        /// Answers collected before the abort.
        partial_answers: usize,
        /// Per-node pending mailbox depths at abort: `(node, depth)`,
        /// nonzero depths only.
        pending: Vec<(usize, usize)>,
        /// Nodes whose worker threads failed to stop within the drain
        /// grace period (empty when shutdown was clean).
        unjoined: Vec<usize>,
    },
    /// An answer reaching the engine did not match the goal's arity —
    /// a corrupted or misrouted frame survived to the top.
    AnswerArity {
        /// The goal arity.
        expected: usize,
        /// The arity received.
        got: usize,
        /// Answers collected before the bad frame.
        partial_answers: usize,
    },
    /// The engine received a message kind it has no business receiving.
    UnexpectedEngineMessage {
        /// The payload's kind name.
        kind: &'static str,
    },
    /// The reliable transport gave up on a link: a message stayed
    /// unacked through the retransmission budget (only reachable at
    /// extreme fault rates, or with recovery disabled under faults).
    RetransmitExhausted {
        /// Sending node (`usize::MAX` = the engine).
        from: usize,
        /// Receiving node (`usize::MAX` = the engine).
        to: usize,
        /// Retransmission rounds attempted.
        retries: u32,
    },
    /// A node crashed (per the fault plan) with recovery disabled.
    LinkDown {
        /// The crashed node.
        node: usize,
    },
    /// The OS refused to spawn a worker thread (resource exhaustion).
    /// Surfaced as a typed error instead of the `std::thread::spawn`
    /// panic so a huge graph degrades gracefully.
    WorkerSpawn {
        /// The node whose worker could not be started.
        node: usize,
        /// The OS error text.
        reason: String,
    },
    /// A [`QueryBudget`] limit (logical messages or memory high-water)
    /// was crossed: the runtime ran a cancel drain wave and stopped
    /// cleanly, keeping the answers derived so far.
    BudgetExceeded {
        /// Which limit tripped.
        resource: Trip,
        /// The configured limit (messages, or bytes).
        limit: u64,
        /// Usage observed when the trip was reported.
        used: u64,
        /// Answers collected before the abort, in arrival order.
        partial: Vec<Tuple>,
        /// Per-node resource accounting at abort, in node-id order.
        accounting: Vec<NodeUsage>,
        /// Cancel waves run while draining (≥ 1).
        cancel_waves: u64,
    },
    /// The evaluation was cancelled through the engine's
    /// [`CancelToken`]: a cancel drain wave ran and the runtime stopped
    /// cleanly, keeping the answers derived so far.
    Cancelled {
        /// Answers collected before the cancel, in arrival order.
        partial: Vec<Tuple>,
        /// Per-node resource accounting at abort, in node-id order.
        accounting: Vec<NodeUsage>,
        /// Cancel waves run while draining (≥ 1).
        cancel_waves: u64,
    },
}

/// Render the busiest rows of a per-node accounting vector (bounded, so
/// error strings stay readable on large graphs).
fn fmt_accounting(f: &mut std::fmt::Formatter<'_>, accounting: &[NodeUsage]) -> std::fmt::Result {
    if accounting.is_empty() {
        return Ok(());
    }
    let mut rows: Vec<&NodeUsage> = accounting.iter().collect();
    rows.sort_by_key(|u| std::cmp::Reverse(u.messages_processed));
    write!(f, "; busiest nodes:")?;
    for u in rows.iter().take(4) {
        write!(
            f,
            " #{}={}msg/{}q/{}B",
            u.node, u.messages_processed, u.mailbox_depth, u.mem_bytes
        )?;
    }
    Ok(())
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Diverged { steps } => {
                write!(f, "evaluation exceeded {steps} steps")
            }
            RuntimeError::NoTermination => write!(
                f,
                "network quiescent without end message: termination protocol failure"
            ),
            RuntimeError::Timeout {
                budget_millis,
                elapsed_millis,
                partial_answers,
                pending,
                unjoined,
            } => {
                write!(
                    f,
                    "threaded evaluation timed out after {elapsed_millis} ms \
                     (budget {budget_millis} ms); {partial_answers} partial answers"
                )?;
                if !pending.is_empty() {
                    write!(f, "; pending mailboxes:")?;
                    for (node, depth) in pending {
                        write!(f, " #{node}={depth}")?;
                    }
                }
                if !unjoined.is_empty() {
                    write!(f, "; workers failed to stop:")?;
                    for node in unjoined {
                        write!(f, " #{node}")?;
                    }
                }
                Ok(())
            }
            RuntimeError::AnswerArity {
                expected,
                got,
                partial_answers,
            } => write!(
                f,
                "answer arity mismatch at the engine: expected {expected}, got {got} \
                 ({partial_answers} partial answers)"
            ),
            RuntimeError::UnexpectedEngineMessage { kind } => {
                write!(
                    f,
                    "unexpected message kind `{kind}` delivered to the engine"
                )
            }
            RuntimeError::RetransmitExhausted { from, to, retries } => {
                let show = |e: &usize| {
                    if *e == usize::MAX {
                        "engine".to_string()
                    } else {
                        format!("#{e}")
                    }
                };
                write!(
                    f,
                    "transport gave up on link {} -> {} after {retries} retransmissions",
                    show(from),
                    show(to)
                )
            }
            RuntimeError::LinkDown { node } => {
                write!(f, "node #{node} crashed and recovery is disabled")
            }
            RuntimeError::WorkerSpawn { node, reason } => {
                write!(
                    f,
                    "could not spawn worker thread for node #{node}: {reason}"
                )
            }
            RuntimeError::BudgetExceeded {
                resource,
                limit,
                used,
                partial,
                accounting,
                cancel_waves,
            } => {
                let what = match resource {
                    Trip::Messages => "logical messages",
                    Trip::Bytes => "memory bytes",
                    Trip::Cancelled => "cancelled",
                };
                write!(
                    f,
                    "query budget exceeded ({what}: used {used} of limit {limit}); \
                     {} partial answers kept after {cancel_waves} cancel wave(s)",
                    partial.len()
                )?;
                fmt_accounting(f, accounting)
            }
            RuntimeError::Cancelled {
                partial,
                accounting,
                cancel_waves,
            } => {
                write!(
                    f,
                    "evaluation cancelled; {} partial answers kept after \
                     {cancel_waves} cancel wave(s)",
                    partial.len()
                )?;
                fmt_accounting(f, accounting)
            }
        }
    }
}

impl std::error::Error for RuntimeError {}
