//! Runtimes executing the process network.

pub mod explore;
mod sim;
mod thread;

pub use explore::{explore, ExploreConfig, ExploreReport, ScheduleViolation};
pub use sim::{Schedule, SimOutcome, SimRuntime};
pub use thread::{ThreadOutcome, ThreadRuntime};

/// Errors raised while running a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The step budget was exhausted (runaway computation guard).
    Diverged {
        /// Steps executed.
        steps: u64,
    },
    /// The network went quiescent without delivering the final `End` —
    /// a termination-protocol failure (should be impossible; kept as a
    /// first-class error so tests can assert it never happens).
    NoTermination,
    /// The threaded runtime timed out waiting for the final `End`.
    Timeout {
        /// The configured timeout in milliseconds.
        millis: u64,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Diverged { steps } => {
                write!(f, "evaluation exceeded {steps} steps")
            }
            RuntimeError::NoTermination => write!(
                f,
                "network quiescent without end message: termination protocol failure"
            ),
            RuntimeError::Timeout { millis } => {
                write!(f, "threaded evaluation timed out after {millis} ms")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}
