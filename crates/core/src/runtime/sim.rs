//! The deterministic simulated network.
//!
//! Per-node FIFO mailboxes with atomic enqueue — exactly the 1986 model
//! of processes with operating-system message queues. Scheduling is
//! pluggable: global-FIFO (fully deterministic) or seeded-random node
//! activation (still deterministic given the seed, and per-sender FIFO is
//! preserved because each node's mailbox is a queue). The random schedule
//! is how the tests adversarially exercise Thm 3.1.
//!
//! With a [`FaultPlan`] attached, the reliable mailboxes are replaced by
//! a faulty wire plus the self-healing transport of [`crate::fault`]:
//! every logical message becomes a sequenced frame that can be dropped,
//! duplicated, delayed, or corrupted; acks and retransmissions restore
//! exactly-once FIFO delivery; and node crashes are recovered by
//! replaying the node's durable message log through a pristine process
//! clone (write-ahead-log semantics — see DESIGN.md). The fault path is
//! a separate loop so the clean path stays byte-identical to the
//! fault-free simulator.
//!
//! Sharded evaluation needs no simulator changes: shard instances are
//! ordinary physical processes, and the two-level termination wave —
//! per-shard-group idleness aggregated at each group's captain (shard 0)
//! before the cross-group leader concludes — is just the §3.2 probe wave
//! over the deeper captain-extended BFST that [`Network::compile_sharded`]
//! builds. The epoch tags and Mattern counters work unchanged because the
//! captain links are counted like any other intra-component edge.

use crate::fault::{endpoint_code, Accepted, CrashPoint, FaultPlan, ReceiverLink, SenderLink};
use crate::msg::{Endpoint, Msg, Payload};
use crate::node::{Ctx, Network, Process};
use crate::runtime::govern::{CancelToken, Governor, NodeUsage, QueryBudget, Trip};
use crate::runtime::{
    budget_error, describe_payload, trace_actor, RuntimeError, TRACE_RING_CAPACITY,
};
use crate::stats::Stats;
use mp_storage::{Relation, Tuple};
use mp_trace::{Event, Ring, Stamp, Trace, Tracer};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Event recording for a simulated run: one [`Tracer`] per node plus the
/// engine, and per-link stamp queues standing in for the wire. Logical
/// delivery on both sim paths is exactly-once FIFO per link (the fault
/// path's transport guarantees it), so a front-pop always pairs a
/// delivery with its send stamp.
pub(crate) struct SimTracing {
    n: usize,
    tracers: Vec<Tracer>,
    pending: BTreeMap<(Endpoint, Endpoint), VecDeque<Stamp>>,
    ring: Arc<Ring<Event>>,
}

impl SimTracing {
    pub(crate) fn new(n: usize) -> Self {
        let ring = Arc::new(Ring::with_capacity(TRACE_RING_CAPACITY));
        let tracers = (0..=n)
            .map(|i| Tracer::new(i as u32, (n + 1) as u32, Arc::clone(&ring)))
            .collect();
        SimTracing {
            n,
            tracers,
            pending: BTreeMap::new(),
            ring,
        }
    }

    /// Record a logical send (and the batch flush it implies when the
    /// frame packages several logical items).
    fn on_send(&mut self, msg: &Msg) {
        let (kind, items, wave, epoch) = describe_payload(&msg.payload);
        let actor = trace_actor(msg.from, self.n) as usize;
        let to = trace_actor(msg.to, self.n);
        if items > 1 {
            self.tracers[actor].on_flush(items);
        }
        let stamp = self.tracers[actor].on_send(to, kind, items, wave, epoch);
        self.pending
            .entry((msg.from, msg.to))
            .or_default()
            .push_back(stamp);
    }

    /// Record a logical delivery, pairing it with its send stamp.
    fn on_deliver(&mut self, msg: &Msg) {
        let (kind, items, wave, epoch) = describe_payload(&msg.payload);
        let stamp = self
            .pending
            .get_mut(&(msg.from, msg.to))
            .and_then(|q| q.pop_front());
        let actor = trace_actor(msg.to, self.n) as usize;
        let from = trace_actor(msg.from, self.n);
        self.tracers[actor].on_deliver(from, stamp.as_ref(), kind, items, wave, epoch);
    }

    /// Record the engine observing the final `End`.
    fn on_engine_end(&mut self) {
        let n = self.n;
        self.tracers[n].on_end();
    }

    fn finish(self) -> Trace {
        mp_trace::collect((self.n + 1) as u32, &self.ring)
    }
}

/// Message scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Global FIFO: messages delivered in send order.
    Fifo,
    /// Seeded random node activation (per-node mailboxes stay FIFO).
    Random(u64),
}

/// Result of a simulated run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// The answer relation collected at the engine endpoint.
    pub answers: Relation,
    /// Instrumentation counters.
    pub stats: Stats,
    /// Full message trace, if requested.
    pub trace: Option<Vec<Msg>>,
    /// Clock-stamped event trace, if requested (same flag): the input to
    /// `mp_trace::check` and to deterministic replay.
    pub events: Option<Trace>,
    /// `End` messages delivered to the engine (Thm 3.1 observable:
    /// must be exactly 1 on success).
    pub engine_ends: u64,
    /// Answers delivered after the final `End` (Thm 3.1 observable:
    /// must be 0).
    pub post_end_answers: u64,
}

/// The simulator.
#[derive(Clone, Debug)]
pub struct SimRuntime {
    /// Scheduling policy.
    pub schedule: Schedule,
    /// Step budget (messages processed) before declaring divergence.
    pub max_steps: u64,
    /// Record every routed message.
    pub trace: bool,
    /// Fault-injection plan; `None` runs the pristine 1986 model with
    /// zero transport overhead.
    pub fault_plan: Option<FaultPlan>,
    /// Recover crashed nodes by log replay. With recovery disabled a
    /// scheduled crash aborts the run with [`RuntimeError::LinkDown`].
    pub recovery: bool,
    /// Resource budget (logical messages, memory, deadline, mailbox
    /// bound). `max_steps` above is the same guard the budget's
    /// `max_steps` folds into — the engine keeps them in sync.
    pub budget: QueryBudget,
    /// Cooperative cancellation handle; tripping it triggers a cancel
    /// wave and a typed [`RuntimeError::Cancelled`].
    pub cancel: CancelToken,
}

impl Default for SimRuntime {
    fn default() -> Self {
        SimRuntime {
            schedule: Schedule::Fifo,
            max_steps: 200_000_000,
            trace: false,
            fault_plan: None,
            recovery: true,
            budget: QueryBudget::default(),
            cancel: CancelToken::default(),
        }
    }
}

impl SimRuntime {
    /// Run the network to completion: inject the top-level relation
    /// request, one (unit or given) tuple request, and end-of-requests;
    /// drive messages until quiescence; require the final `End`.
    pub fn run(&self, network: &mut Network) -> Result<SimOutcome, RuntimeError> {
        self.run_with_requests(network, std::iter::once(Tuple::unit()))
    }

    /// Like [`SimRuntime::run`] with explicit top-level tuple requests
    /// (bindings for the goal's `d` arguments — the standard query has
    /// none, hence a single unit request).
    pub fn run_with_requests(
        &self,
        network: &mut Network,
        requests: impl IntoIterator<Item = Tuple>,
    ) -> Result<SimOutcome, RuntimeError> {
        let root = Endpoint::Node(network.root);
        let mut initial = vec![Msg {
            from: Endpoint::Engine,
            to: root,
            payload: Payload::RelationRequest,
        }];
        for b in requests {
            initial.push(Msg {
                from: Endpoint::Engine,
                to: root,
                payload: Payload::TupleRequest { binding: b },
            });
        }
        initial.push(Msg {
            from: Endpoint::Engine,
            to: root,
            payload: Payload::EndOfRequests,
        });

        match &self.fault_plan {
            None => self.run_clean(network, initial, None),
            Some(plan) => self.run_faulty(network, initial, plan.clone()),
        }
    }

    /// Re-execute a recorded delivery schedule: at each step the next
    /// actor in `activations` (a recorded trace's
    /// [`Trace::activation_order`]) processes its front message;
    /// activations whose mailbox is empty are skipped, and once the
    /// recording is exhausted the run finishes FIFO. Per-link FIFO makes
    /// each node consume messages in the recorded per-link order, so a
    /// threaded run's schedule reproduces deterministically (answers and
    /// logical counters are schedule-invariant — Thm 3.1/4.1 — which is
    /// exactly what the replay tests assert). Fault plans do not apply:
    /// replay re-executes the *logical* history, which the recovery
    /// transport already made exactly-once.
    pub fn run_replay(
        &self,
        network: &mut Network,
        requests: impl IntoIterator<Item = Tuple>,
        activations: &[u32],
    ) -> Result<SimOutcome, RuntimeError> {
        let root = Endpoint::Node(network.root);
        let mut initial = vec![Msg {
            from: Endpoint::Engine,
            to: root,
            payload: Payload::RelationRequest,
        }];
        for b in requests {
            initial.push(Msg {
                from: Endpoint::Engine,
                to: root,
                payload: Payload::TupleRequest { binding: b },
            });
        }
        initial.push(Msg {
            from: Endpoint::Engine,
            to: root,
            payload: Payload::EndOfRequests,
        });
        self.run_clean(network, initial, Some(activations))
    }

    /// The pristine path: reliable atomic mailboxes, no transport layer,
    /// no overhead — byte-identical message counts to the pre-fault
    /// simulator.
    fn run_clean(
        &self,
        network: &mut Network,
        initial: Vec<Msg>,
        replay: Option<&[u32]>,
    ) -> Result<SimOutcome, RuntimeError> {
        let n = network.processes.len();
        let mut mailboxes: Vec<VecDeque<Msg>> = vec![VecDeque::new(); n];
        let mut fifo_tokens: VecDeque<usize> = VecDeque::new();
        let mut rng = match self.schedule {
            Schedule::Fifo => None,
            Schedule::Random(seed) => Some(ChaCha8Rng::seed_from_u64(seed)),
        };
        let mut stats = Stats::default();
        let mut trace: Option<Vec<Msg>> = if self.trace { Some(Vec::new()) } else { None };
        let mut tracing: Option<SimTracing> = if self.trace {
            Some(SimTracing::new(n))
        } else {
            None
        };
        let mut engine_answers = Relation::new(network.answer_arity);
        let mut engine_ends: u64 = 0;
        let mut post_end_answers: u64 = 0;
        let answer_arity = network.answer_arity;
        let governor = Governor::new(self.budget.clone(), self.cancel.clone());
        let mut processed: Vec<u64> = vec![0; n];
        let started = Instant::now();
        let mut trip: Option<Trip> = None;

        let route = |msg: Msg,
                     mailboxes: &mut Vec<VecDeque<Msg>>,
                     fifo_tokens: &mut VecDeque<usize>,
                     stats: &mut Stats,
                     trace: &mut Option<Vec<Msg>>,
                     tracing: &mut Option<SimTracing>,
                     engine_answers: &mut Relation,
                     engine_ends: &mut u64,
                     post_end_answers: &mut u64|
         -> Result<(), RuntimeError> {
            stats.count_send(&msg.payload);
            governor.note_messages(describe_payload(&msg.payload).1);
            if let Some(t) = trace.as_mut() {
                t.push(msg.clone());
            }
            if let Some(tr) = tracing.as_mut() {
                tr.on_send(&msg);
                // Engine-bound messages are consumed right here, so the
                // delivery is recorded here too.
                if msg.to == Endpoint::Engine {
                    tr.on_deliver(&msg);
                    if matches!(msg.payload, Payload::End) {
                        tr.on_engine_end();
                    }
                }
            }
            match msg.to {
                Endpoint::Engine => match msg.payload {
                    Payload::Answer { tuple } => {
                        if *engine_ends > 0 {
                            *post_end_answers += 1;
                        }
                        let got = tuple.arity();
                        if engine_answers.insert(tuple).is_err() {
                            return Err(RuntimeError::AnswerArity {
                                expected: answer_arity,
                                got,
                                partial_answers: engine_answers.len(),
                            });
                        }
                    }
                    Payload::AnswerBatch { tuples } => {
                        for tuple in tuples {
                            if *engine_ends > 0 {
                                *post_end_answers += 1;
                            }
                            let got = tuple.arity();
                            if engine_answers.insert(tuple).is_err() {
                                return Err(RuntimeError::AnswerArity {
                                    expected: answer_arity,
                                    got,
                                    partial_answers: engine_answers.len(),
                                });
                            }
                        }
                    }
                    Payload::End => *engine_ends += 1,
                    Payload::EndTupleRequest { .. } | Payload::EndTupleRequestBatch { .. } => {}
                    other => {
                        return Err(RuntimeError::UnexpectedEngineMessage {
                            kind: other.kind_name(),
                        })
                    }
                },
                Endpoint::Node(id) => {
                    governor.note_enqueue(msg.payload.approx_bytes());
                    mailboxes[id].push_back(msg);
                    stats.mailbox_high_water =
                        stats.mailbox_high_water.max(mailboxes[id].len() as u64);
                    fifo_tokens.push_back(id);
                }
            }
            Ok(())
        };

        for m in initial {
            route(
                m,
                &mut mailboxes,
                &mut fifo_tokens,
                &mut stats,
                &mut trace,
                &mut tracing,
                &mut engine_answers,
                &mut engine_ends,
                &mut post_end_answers,
            )?;
        }

        let mut out: Vec<Msg> = Vec::new();
        let mut steps: u64 = 0;
        let mut replay_cursor = 0usize;
        loop {
            // Resource-governance trip: on the first observed trip,
            // broadcast one cancel wave to every node and keep
            // scheduling. Cancelled nodes drain their mailboxes without
            // producing more answers (MP310), so the loop reaches
            // quiescence and returns the typed error below instead of
            // aborting mid-protocol with frames still in flight.
            if trip.is_none() {
                if let Some(t) = governor.tripped() {
                    trip = Some(t);
                    stats.cancel_waves += 1;
                    for id in 0..n {
                        route(
                            Msg {
                                from: Endpoint::Engine,
                                to: Endpoint::Node(id),
                                payload: Payload::Cancel { wave: 1, epoch: 0 },
                            },
                            &mut mailboxes,
                            &mut fifo_tokens,
                            &mut stats,
                            &mut trace,
                            &mut tracing,
                            &mut engine_answers,
                            &mut engine_ends,
                            &mut post_end_answers,
                        )?;
                    }
                }
            }
            // A recorded schedule takes precedence; its activations with
            // an empty mailbox are skipped (the recorded run may contain
            // protocol traffic a re-execution doesn't reproduce 1:1) and
            // FIFO finishes whatever the recording doesn't cover.
            let mut next = None;
            if let Some(acts) = replay {
                while replay_cursor < acts.len() {
                    let id = acts[replay_cursor] as usize;
                    replay_cursor += 1;
                    if id < n && !mailboxes[id].is_empty() {
                        next = Some(id);
                        break;
                    }
                }
            }
            if next.is_none() {
                next = match &mut rng {
                    None => loop {
                        match fifo_tokens.pop_front() {
                            Some(id) if !mailboxes[id].is_empty() => break Some(id),
                            Some(_) => continue,
                            None => break None,
                        }
                    },
                    Some(rng) => {
                        let nonempty: Vec<usize> =
                            (0..n).filter(|&i| !mailboxes[i].is_empty()).collect();
                        if nonempty.is_empty() {
                            None
                        } else {
                            Some(nonempty[rng.gen_range(0..nonempty.len())])
                        }
                    }
                };
            }
            let Some(id) = next else { break };
            let Some(msg) = mailboxes[id].pop_front() else {
                continue;
            };
            governor.note_dequeue(msg.payload.approx_bytes());
            steps += 1;
            if steps > self.max_steps {
                return Err(RuntimeError::Diverged { steps });
            }
            // Wall-clock and arena sampling are amortized: a syscall and
            // an interner read every 1024 steps keep the unlimited-
            // budget clean path within noise of the ungoverned loop.
            if steps.is_multiple_of(1024) {
                governor.sample_arena();
                if started.elapsed() >= self.budget.deadline {
                    return Err(RuntimeError::Timeout {
                        budget_millis: self.budget.deadline.as_millis() as u64,
                        elapsed_millis: started.elapsed().as_millis() as u64,
                        partial_answers: engine_answers.len(),
                        pending: (0..n)
                            .map(|i| (i, mailboxes[i].len()))
                            .filter(|&(_, d)| d > 0)
                            .collect(),
                        unjoined: Vec::new(),
                    });
                }
            }
            if let Some(tr) = tracing.as_mut() {
                tr.on_deliver(&msg);
            }
            let mut ctx = Ctx {
                out: &mut out,
                stats: &mut stats,
                mailbox_empty: mailboxes[id].is_empty(),
                // Flow control lives on the recovery transport; the
                // pristine path has no stalled frames.
                pressure: false,
                tracer: tracing.as_mut().map(|t| &mut t.tracers[id]),
            };
            network.processes[id].handle(msg, &mut ctx);
            processed[id] += 1;
            for m in out.drain(..) {
                route(
                    m,
                    &mut mailboxes,
                    &mut fifo_tokens,
                    &mut stats,
                    &mut trace,
                    &mut tracing,
                    &mut engine_answers,
                    &mut engine_ends,
                    &mut post_end_answers,
                )?;
            }
        }

        governor.sample_arena();
        stats.mem_high_water_bytes = governor.mem_high_water();
        if let Some(t) = trip {
            let accounting = (0..n)
                .map(|i| NodeUsage {
                    node: i,
                    shard: network.shard_of.get(i).map_or(0, |&(_, s)| s),
                    messages_processed: processed[i],
                    mailbox_depth: mailboxes[i].len(),
                    mem_bytes: mailboxes[i].iter().map(|m| m.payload.approx_bytes()).sum(),
                })
                .collect();
            return Err(budget_error(
                t,
                &governor,
                engine_answers.iter().cloned().collect(),
                accounting,
                stats.cancel_waves,
            ));
        }
        if engine_ends == 0 {
            return Err(RuntimeError::NoTermination);
        }
        Ok(SimOutcome {
            answers: engine_answers,
            stats,
            trace,
            events: tracing.map(SimTracing::finish),
            engine_ends,
            post_end_answers,
        })
    }

    /// The fault path: every link goes through the sequenced, acked,
    /// retransmitting transport; the fault plan perturbs the wire; node
    /// crashes are recovered by durable-log replay.
    fn run_faulty(
        &self,
        network: &mut Network,
        initial: Vec<Msg>,
        plan: FaultPlan,
    ) -> Result<SimOutcome, RuntimeError> {
        let n = network.processes.len();
        let mut sim = FaultySim {
            plan,
            recovery: self.recovery,
            governor: Governor::new(self.budget.clone(), self.cancel.clone()),
            window: self.budget.mailbox_bound.map(|b| b as u64),
            intra: network.intra_pairs(),
            pristine: network.processes.clone(),
            mailboxes: vec![VecDeque::new(); n],
            fifo_tokens: VecDeque::new(),
            logs: vec![Vec::new(); n],
            processed: vec![0; n],
            epochs: vec![0; n],
            senders: BTreeMap::new(),
            receivers: BTreeMap::new(),
            wire: BTreeMap::new(),
            wire_uid: 0,
            now: 0,
            stats: Stats::default(),
            trace: if self.trace { Some(Vec::new()) } else { None },
            tracing: if self.trace {
                Some(SimTracing::new(n))
            } else {
                None
            },
            engine_answers: Relation::new(network.answer_arity),
            engine_ends: 0,
            post_end_answers: 0,
            answer_arity: network.answer_arity,
        };
        let mut rng = match self.schedule {
            Schedule::Fifo => None,
            Schedule::Random(seed) => Some(ChaCha8Rng::seed_from_u64(seed)),
        };

        for m in initial {
            sim.logical_send(m)?;
        }

        let mut out: Vec<Msg> = Vec::new();
        let mut steps: u64 = 0;
        let started = Instant::now();
        let mut trip: Option<Trip> = None;
        loop {
            // Same trip discipline as the clean path, but the cancel
            // wave rides the recovery transport: each Cancel frame is
            // sequenced and logged, so a node that crashes mid-drain
            // re-learns its cancellation from log replay.
            if trip.is_none() {
                if let Some(t) = sim.governor.tripped() {
                    trip = Some(t);
                    sim.stats.cancel_waves += 1;
                    for id in 0..n {
                        sim.logical_send(Msg {
                            from: Endpoint::Engine,
                            to: Endpoint::Node(id),
                            payload: Payload::Cancel { wave: 1, epoch: 0 },
                        })?;
                    }
                }
            }
            sim.deliver_due()?;

            let next = match &mut rng {
                None => loop {
                    match sim.fifo_tokens.pop_front() {
                        Some(id) if !sim.mailboxes[id].is_empty() => break Some(id),
                        Some(_) => continue,
                        None => break None,
                    }
                },
                Some(rng) => {
                    let nonempty: Vec<usize> =
                        (0..n).filter(|&i| !sim.mailboxes[i].is_empty()).collect();
                    if nonempty.is_empty() {
                        None
                    } else {
                        Some(nonempty[rng.gen_range(0..nonempty.len())])
                    }
                }
            };

            match next {
                Some(id) => {
                    let Some(msg) = sim.mailboxes[id].pop_front() else {
                        continue;
                    };
                    sim.governor.note_dequeue(msg.payload.approx_bytes());
                    steps += 1;
                    sim.now += 1;
                    if steps > self.max_steps {
                        return Err(RuntimeError::Diverged { steps });
                    }
                    if steps.is_multiple_of(1024) {
                        sim.governor.sample_arena();
                        if started.elapsed() >= self.budget.deadline {
                            return Err(RuntimeError::Timeout {
                                budget_millis: self.budget.deadline.as_millis() as u64,
                                elapsed_millis: started.elapsed().as_millis() as u64,
                                partial_answers: sim.engine_answers.len(),
                                pending: (0..n)
                                    .map(|i| (i, sim.mailboxes[i].len()))
                                    .filter(|&(_, d)| d > 0)
                                    .collect(),
                                unjoined: Vec::new(),
                            });
                        }
                    }
                    if let Some(tr) = sim.tracing.as_mut() {
                        tr.on_deliver(&msg);
                    }
                    let pressure = sim.node_pressure(id);
                    let mut ctx = Ctx {
                        out: &mut out,
                        stats: &mut sim.stats,
                        mailbox_empty: sim.mailboxes[id].is_empty(),
                        pressure,
                        tracer: sim.tracing.as_mut().map(|t| &mut t.tracers[id]),
                    };
                    network.processes[id].handle(msg, &mut ctx);
                    sim.processed[id] += 1;
                    for m in out.drain(..) {
                        sim.logical_send(m)?;
                    }
                    sim.maybe_crash(network, id, &mut out)?;
                    // Periodic retransmission scan: the probe protocol
                    // keeps the network busy forever when a message is
                    // lost (the Mattern counters block conclusion), so
                    // quiescence alone must not gate retransmission.
                    if steps.is_multiple_of(64) {
                        sim.retransmit_scan(false)?;
                    }
                }
                None => {
                    // No deliverable message. Advance time to the next
                    // wire event, or force a retransmission round, or —
                    // with everything drained and acked — stop.
                    if let Some((&(t, _), _)) = sim.wire.iter().next() {
                        sim.now = sim.now.max(t);
                        continue;
                    }
                    if sim.retransmit_scan(true)? {
                        sim.now += 1;
                        continue;
                    }
                    break;
                }
            }
        }

        sim.governor.sample_arena();
        sim.stats.mem_high_water_bytes = sim.governor.mem_high_water();
        if let Some(t) = trip {
            let accounting = (0..n)
                .map(|i| NodeUsage {
                    node: i,
                    shard: network.shard_of.get(i).map_or(0, |&(_, s)| s),
                    messages_processed: sim.processed[i],
                    mailbox_depth: sim.mailboxes[i].len(),
                    mem_bytes: sim.mailboxes[i]
                        .iter()
                        .map(|m| m.payload.approx_bytes())
                        .sum(),
                })
                .collect();
            return Err(budget_error(
                t,
                &sim.governor,
                sim.engine_answers.iter().cloned().collect(),
                accounting,
                sim.stats.cancel_waves,
            ));
        }
        if sim.engine_ends == 0 {
            return Err(RuntimeError::NoTermination);
        }
        Ok(SimOutcome {
            answers: sim.engine_answers,
            stats: sim.stats,
            trace: sim.trace,
            events: sim.tracing.map(SimTracing::finish),
            engine_ends: sim.engine_ends,
            post_end_answers: sim.post_end_answers,
        })
    }
}

/// One frame on the faulty wire. `link` is always the *data* direction
/// `(sender, receiver)`; ack frames travel against it.
#[derive(Clone, Debug)]
enum Frame {
    /// A sequenced data frame.
    Data {
        /// The data link `(from, to)`.
        link: (Endpoint, Endpoint),
        /// Transport sequence number on that link.
        seq: u64,
        /// The logical message.
        msg: Msg,
        /// Checksum failure injected in flight: discarded on arrival.
        corrupted: bool,
    },
    /// A cumulative ack for `link`, traveling receiver → sender.
    Ack {
        /// The data link being acknowledged.
        link: (Endpoint, Endpoint),
        /// Everything below this sequence number is delivered.
        upto: u64,
    },
}

/// All state of one fault-injected simulation run.
struct FaultySim {
    plan: FaultPlan,
    recovery: bool,
    /// Resource accounting and trip state for this run.
    governor: Governor,
    /// Credit window (frames in flight per link) derived from the
    /// budget's mailbox bound; `None` = unlimited (pre-governance
    /// behavior).
    window: Option<u64>,
    /// Directed node pairs inside nontrivial strong components; their
    /// links are never windowed (deadlock freedom — see
    /// [`Network::intra_pairs`]).
    intra: BTreeSet<(usize, usize)>,
    /// Pristine process clones for crash recovery (initial state).
    pristine: Vec<Process>,
    mailboxes: Vec<VecDeque<Msg>>,
    fifo_tokens: VecDeque<usize>,
    /// Durable per-node logs of every delivered message, in delivery
    /// order. `logs[i][..processed[i]]` is the replay prefix; the
    /// suffix is exactly the node's current mailbox.
    logs: Vec<Vec<Msg>>,
    processed: Vec<u64>,
    /// Restart generation per node.
    epochs: Vec<u64>,
    senders: BTreeMap<(Endpoint, Endpoint), SenderLink>,
    receivers: BTreeMap<(Endpoint, Endpoint), ReceiverLink>,
    /// In-flight frames, keyed by `(deliver_at, uid)` — a deterministic
    /// total order.
    wire: BTreeMap<(u64, u64), Frame>,
    wire_uid: u64,
    now: u64,
    stats: Stats,
    trace: Option<Vec<Msg>>,
    /// Event recording (same flag as `trace`). Records *logical* sends
    /// and deliveries only — retransmissions, wire duplicates, and acks
    /// below the exactly-once line are invisible to the trace, which is
    /// what makes the batching-invariance and FIFO invariants checkable.
    tracing: Option<SimTracing>,
    engine_answers: Relation,
    engine_ends: u64,
    post_end_answers: u64,
    answer_arity: usize,
}

impl FaultySim {
    /// The credit window for `link`: the budget's mailbox bound on
    /// cross-component links and the engine injector, unlimited on
    /// intra-component links (a window that stalls a recursive answer
    /// its own producer transitively waits on could deadlock the
    /// cycle).
    fn link_window(&self, link: (Endpoint, Endpoint)) -> Option<u64> {
        let intra = match (link.0, link.1) {
            (Endpoint::Node(a), Endpoint::Node(b)) => self.intra.contains(&(a, b)),
            _ => false,
        };
        if intra {
            None
        } else {
            self.window
        }
    }

    /// True when any of `id`'s outgoing links holds window-stalled
    /// frames — the node's [`Ctx::pressure`] input.
    fn node_pressure(&self, id: usize) -> bool {
        self.senders
            .iter()
            .any(|(l, s)| l.0 == Endpoint::Node(id) && s.stalled() > 0)
    }

    /// A logical send: counted once (retransmissions and wire duplicates
    /// never inflate the message counters), then framed onto the wire —
    /// unless the link's credit window is full, in which case the frame
    /// waits in the sender's durable buffer until acks free credits.
    fn logical_send(&mut self, msg: Msg) -> Result<(), RuntimeError> {
        self.stats.count_send(&msg.payload);
        self.governor
            .note_messages(describe_payload(&msg.payload).1);
        if let Some(t) = self.trace.as_mut() {
            t.push(msg.clone());
        }
        if let Some(tr) = self.tracing.as_mut() {
            tr.on_send(&msg);
        }
        let link = (msg.from, msg.to);
        let window = self.link_window(link);
        let sender = self.senders.entry(link).or_insert_with(|| SenderLink {
            window,
            ..SenderLink::default()
        });
        let seq = sender.send(msg.clone(), self.now);
        if sender.admit(seq) {
            self.transmit(link, seq, msg, 0);
        } else {
            self.stats.credits_stalled += 1;
        }
        Ok(())
    }

    /// Put one copy of a data frame on the wire, consulting the fault
    /// plan for its fate.
    fn transmit(&mut self, link: (Endpoint, Endpoint), seq: u64, msg: Msg, attempt: u32) {
        let fate = self
            .plan
            .fate(endpoint_code(link.0), endpoint_code(link.1), seq, attempt);
        if fate.dropped {
            self.stats.fault_dropped += 1;
            return;
        }
        if fate.corrupted {
            self.stats.fault_corrupted += 1;
        }
        if fate.delay > 0 {
            self.stats.fault_delayed += 1;
        }
        let deliver_at = self.now + 1 + fate.delay;
        self.push_wire(
            deliver_at,
            Frame::Data {
                link,
                seq,
                msg: msg.clone(),
                corrupted: fate.corrupted,
            },
        );
        if fate.duplicated {
            self.stats.fault_duplicated += 1;
            self.push_wire(
                deliver_at + 1,
                Frame::Data {
                    link,
                    seq,
                    msg,
                    corrupted: false,
                },
            );
        }
    }

    /// Send a cumulative ack for `link` back to its sender. Acks ride
    /// the same faulty wire (dropped or delayed acks are repaired by
    /// the next ack or a retransmission — they are cumulative), but are
    /// never duplicated or corrupted: a corrupt ack is just a lost ack.
    fn send_ack(&mut self, link: (Endpoint, Endpoint), upto: u64) {
        self.stats.acks += 1;
        let uid = self.wire_uid; // distinct hash input per ack frame
        let fate = self
            .plan
            .fate(endpoint_code(link.1), endpoint_code(link.0), uid, u32::MAX);
        if fate.dropped || fate.corrupted {
            self.stats.fault_dropped += 1;
            return;
        }
        let deliver_at = self.now + 1 + fate.delay;
        self.push_wire(deliver_at, Frame::Ack { link, upto });
    }

    fn push_wire(&mut self, deliver_at: u64, frame: Frame) {
        let uid = self.wire_uid;
        self.wire_uid += 1;
        self.wire.insert((deliver_at, uid), frame);
    }

    /// Deliver every wire frame due at or before `now`.
    fn deliver_due(&mut self) -> Result<(), RuntimeError> {
        while let Some((&(t, _), _)) = self.wire.first_key_value() {
            if t > self.now {
                break;
            }
            let Some((_, frame)) = self.wire.pop_first() else {
                break;
            };
            self.deliver_frame(frame)?;
        }
        Ok(())
    }

    fn deliver_frame(&mut self, frame: Frame) -> Result<(), RuntimeError> {
        match frame {
            Frame::Ack { link, upto } => {
                let released = match self.senders.get_mut(&link) {
                    Some(s) => {
                        s.ack_upto(upto);
                        // Freed credits admit stalled frames, in order.
                        s.release()
                    }
                    None => Vec::new(),
                };
                for (seq, msg) in released {
                    self.transmit(link, seq, msg, 0);
                }
                Ok(())
            }
            Frame::Data {
                link,
                seq,
                msg,
                corrupted,
            } => {
                if corrupted {
                    // Detected checksum failure: discard; no ack, so the
                    // sender retransmits a clean copy.
                    return Ok(());
                }
                let receiver = self.receivers.entry(link).or_default();
                match receiver.accept(seq, msg) {
                    Accepted::Deliver(msgs) => {
                        let upto = receiver.next_expected;
                        self.send_ack(link, upto);
                        for m in msgs {
                            self.deliver_msg(m)?;
                        }
                        Ok(())
                    }
                    Accepted::Duplicate => {
                        let upto = receiver.next_expected;
                        self.stats.dups_discarded += 1;
                        self.send_ack(link, upto);
                        Ok(())
                    }
                    Accepted::Buffered => Ok(()),
                }
            }
        }
    }

    /// Record one answer tuple at the engine endpoint.
    fn engine_answer(&mut self, tuple: mp_storage::Tuple) -> Result<(), RuntimeError> {
        if self.engine_ends > 0 {
            self.post_end_answers += 1;
        }
        let got = tuple.arity();
        if self.engine_answers.insert(tuple).is_err() {
            return Err(RuntimeError::AnswerArity {
                expected: self.answer_arity,
                got,
                partial_answers: self.engine_answers.len(),
            });
        }
        Ok(())
    }

    /// Final, in-order, exactly-once delivery of a logical message.
    fn deliver_msg(&mut self, msg: Msg) -> Result<(), RuntimeError> {
        // Engine-bound messages are consumed right here, so their
        // delivery is recorded here; node-bound ones are recorded at
        // mailbox pop, when the node actually processes them.
        if msg.to == Endpoint::Engine {
            if let Some(tr) = self.tracing.as_mut() {
                tr.on_deliver(&msg);
                if matches!(msg.payload, Payload::End) {
                    tr.on_engine_end();
                }
            }
        }
        match msg.to {
            Endpoint::Engine => match msg.payload {
                Payload::Answer { tuple } => self.engine_answer(tuple),
                Payload::AnswerBatch { tuples } => {
                    for tuple in tuples {
                        self.engine_answer(tuple)?;
                    }
                    Ok(())
                }
                Payload::End => {
                    self.engine_ends += 1;
                    Ok(())
                }
                Payload::EndTupleRequest { .. } | Payload::EndTupleRequestBatch { .. } => Ok(()),
                other => Err(RuntimeError::UnexpectedEngineMessage {
                    kind: other.kind_name(),
                }),
            },
            Endpoint::Node(id) => {
                self.governor.note_enqueue(msg.payload.approx_bytes());
                self.logs[id].push(msg.clone());
                self.mailboxes[id].push_back(msg);
                self.stats.mailbox_high_water = self
                    .stats
                    .mailbox_high_water
                    .max(self.mailboxes[id].len() as u64);
                self.fifo_tokens.push_back(id);
                Ok(())
            }
        }
    }

    /// Crash the node if its processed-message count hit a scheduled
    /// crash point, then recover it by replaying the durable log through
    /// a pristine clone (or abort, with recovery disabled).
    fn maybe_crash(
        &mut self,
        network: &mut Network,
        id: usize,
        out: &mut Vec<Msg>,
    ) -> Result<(), RuntimeError> {
        let hit = self
            .plan
            .crashes
            .iter()
            .any(|c: &CrashPoint| c.node == id && c.after_processed == self.processed[id]);
        if !hit {
            return Ok(());
        }
        if !self.recovery {
            return Err(RuntimeError::LinkDown { node: id });
        }
        self.stats.crashes += 1;
        self.epochs[id] += 1;
        self.stats.epoch_bumps += 1;
        if let Some(tr) = self.tracing.as_mut() {
            tr.tracers[id].on_crash(self.epochs[id]);
        }

        // Volatile transport state into the node is lost; the senders'
        // unacked buffers (durable, like a WAL) retransmit the contents.
        for (link, r) in self.receivers.iter_mut() {
            if link.1 == Endpoint::Node(id) {
                r.clear_volatile();
            }
        }

        // Rebuild computation state: pristine clone + deterministic
        // replay of the processed log prefix. Outputs are discarded —
        // they were already sent (and sequenced durably) pre-crash. The
        // mailbox (the log suffix) survives as-is. A scratch stats sink
        // keeps replayed work out of the run's counters.
        let mut fresh = self.pristine[id].clone();
        let mut scratch = Stats::default();
        let mut discard: Vec<Msg> = Vec::new();
        let prefix = self.processed[id] as usize;
        let mut replayed_here: u64 = 0;
        for m in self.logs[id].iter().take(prefix) {
            // Wave probes and replies are deliberately not replayed:
            // protocol state resets at restart and is rebuilt by fresh
            // epoch-tagged waves. `SccFinished` IS replayed — it is
            // durable component state (finished, feeders released), not
            // wave state.
            let skip = matches!(
                m.payload,
                Payload::EndRequest { .. }
                    | Payload::EndNegative { .. }
                    | Payload::EndConfirmed { .. }
                    | Payload::Reborn { .. }
            );
            if skip {
                continue;
            }
            let mut ctx = Ctx {
                out: &mut discard,
                stats: &mut scratch,
                // Never report an empty mailbox during replay: a leader
                // must not originate a probe wave whose messages would
                // be discarded.
                mailbox_empty: false,
                pressure: false,
                // Replayed deliveries were already recorded pre-crash;
                // recording them again would double-count.
                tracer: None,
            };
            fresh.handle(m.clone(), &mut ctx);
            discard.clear();
            self.stats.replayed += 1;
            replayed_here += 1;
        }
        if let Some(tr) = self.tracing.as_mut() {
            tr.tracers[id].on_recover(self.epochs[id], replayed_here);
        }
        // Announce the rebirth (aborts any wave in flight at the BFST
        // parent) with the bumped epoch.
        fresh.restarted(self.epochs[id], out);
        network.processes[id] = fresh;
        for m in out.drain(..) {
            self.logical_send(m)?;
        }
        Ok(())
    }

    /// Retransmit unacked messages: links idle past the plan's
    /// `retransmit_after` horizon, or — when `force` is set because the
    /// network is otherwise quiescent — every link with unacked traffic.
    /// Returns whether anything was put back on the wire.
    fn retransmit_scan(&mut self, force: bool) -> Result<bool, RuntimeError> {
        let due: Vec<(Endpoint, Endpoint)> = self
            .senders
            .iter()
            .filter(|(_, s)| {
                if force {
                    !s.unacked.is_empty()
                } else {
                    s.due(self.now, self.plan.retransmit_after)
                }
            })
            .map(|(&l, _)| l)
            .collect();
        let mut any = false;
        for link in due {
            let (retries, frames) = {
                let Some(s) = self.senders.get_mut(&link) else {
                    continue;
                };
                s.retries += 1;
                s.last_activity = self.now;
                // Admit whatever the window now covers (the release
                // bumps `wire_hi`), then retransmit only frames that
                // have been on the wire: stalled frames beyond the
                // window are never forced out by a timer.
                let _ = s.release();
                let frames: Vec<(u64, Msg)> = s
                    .unacked
                    .range(..s.wire_hi)
                    .map(|(&q, m)| (q, m.clone()))
                    .collect();
                (s.retries, frames)
            };
            if retries > self.plan.max_retries {
                return Err(RuntimeError::RetransmitExhausted {
                    from: link.0.node().unwrap_or(usize::MAX),
                    to: link.1.node().unwrap_or(usize::MAX),
                    retries,
                });
            }
            for (seq, msg) in frames {
                self.stats.retransmits += 1;
                self.transmit(link, seq, msg, retries);
                any = true;
            }
        }
        Ok(any)
    }
}
