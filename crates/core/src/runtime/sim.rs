//! The deterministic simulated network.
//!
//! Per-node FIFO mailboxes with atomic enqueue — exactly the 1986 model
//! of processes with operating-system message queues. Scheduling is
//! pluggable: global-FIFO (fully deterministic) or seeded-random node
//! activation (still deterministic given the seed, and per-sender FIFO is
//! preserved because each node's mailbox is a queue). The random schedule
//! is how the tests adversarially exercise Thm 3.1.

use crate::msg::{Endpoint, Msg, Payload};
use crate::node::{Ctx, Network};
use crate::runtime::RuntimeError;
use crate::stats::Stats;
use mp_storage::{Relation, Tuple};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Message scheduling policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Global FIFO: messages delivered in send order.
    Fifo,
    /// Seeded random node activation (per-node mailboxes stay FIFO).
    Random(u64),
}

/// Result of a simulated run.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// The answer relation collected at the engine endpoint.
    pub answers: Relation,
    /// Instrumentation counters.
    pub stats: Stats,
    /// Full message trace, if requested.
    pub trace: Option<Vec<Msg>>,
}

/// The simulator.
#[derive(Clone, Debug)]
pub struct SimRuntime {
    /// Scheduling policy.
    pub schedule: Schedule,
    /// Step budget (messages processed) before declaring divergence.
    pub max_steps: u64,
    /// Record every routed message.
    pub trace: bool,
}

impl Default for SimRuntime {
    fn default() -> Self {
        SimRuntime {
            schedule: Schedule::Fifo,
            max_steps: 200_000_000,
            trace: false,
        }
    }
}

impl SimRuntime {
    /// Run the network to completion: inject the top-level relation
    /// request, one (unit or given) tuple request, and end-of-requests;
    /// drive messages until quiescence; require the final `End`.
    pub fn run(&self, network: &mut Network) -> Result<SimOutcome, RuntimeError> {
        self.run_with_requests(network, std::iter::once(Tuple::unit()))
    }

    /// Like [`SimRuntime::run`] with explicit top-level tuple requests
    /// (bindings for the goal's `d` arguments — the standard query has
    /// none, hence a single unit request).
    pub fn run_with_requests(
        &self,
        network: &mut Network,
        requests: impl IntoIterator<Item = Tuple>,
    ) -> Result<SimOutcome, RuntimeError> {
        let n = network.processes.len();
        let mut mailboxes: Vec<VecDeque<Msg>> = vec![VecDeque::new(); n];
        let mut fifo_tokens: VecDeque<usize> = VecDeque::new();
        let mut rng = match self.schedule {
            Schedule::Fifo => None,
            Schedule::Random(seed) => Some(ChaCha8Rng::seed_from_u64(seed)),
        };
        let mut stats = Stats::default();
        let mut trace: Option<Vec<Msg>> = if self.trace { Some(Vec::new()) } else { None };
        let mut engine_answers = Relation::new(network.answer_arity);
        let mut end_seen = false;

        let root = Endpoint::Node(network.root);
        let mut initial = vec![Msg {
            from: Endpoint::Engine,
            to: root,
            payload: Payload::RelationRequest,
        }];
        for b in requests {
            initial.push(Msg {
                from: Endpoint::Engine,
                to: root,
                payload: Payload::TupleRequest { binding: b },
            });
        }
        initial.push(Msg {
            from: Endpoint::Engine,
            to: root,
            payload: Payload::EndOfRequests,
        });

        let route = |msg: Msg,
                     mailboxes: &mut Vec<VecDeque<Msg>>,
                     fifo_tokens: &mut VecDeque<usize>,
                     stats: &mut Stats,
                     trace: &mut Option<Vec<Msg>>,
                     engine_answers: &mut Relation,
                     end_seen: &mut bool| {
            stats.count_send(&msg.payload);
            if let Some(t) = trace.as_mut() {
                t.push(msg.clone());
            }
            match msg.to {
                Endpoint::Engine => match msg.payload {
                    Payload::Answer { tuple } => {
                        engine_answers
                            .insert(tuple)
                            .expect("answers match the goal arity");
                    }
                    Payload::End => *end_seen = true,
                    Payload::EndTupleRequest { .. } => {}
                    other => unreachable!("unexpected message to engine: {other:?}"),
                },
                Endpoint::Node(id) => {
                    mailboxes[id].push_back(msg);
                    fifo_tokens.push_back(id);
                }
            }
        };

        for m in initial {
            route(
                m,
                &mut mailboxes,
                &mut fifo_tokens,
                &mut stats,
                &mut trace,
                &mut engine_answers,
                &mut end_seen,
            );
        }

        let mut out: Vec<Msg> = Vec::new();
        let mut steps: u64 = 0;
        loop {
            let next = match &mut rng {
                None => loop {
                    match fifo_tokens.pop_front() {
                        Some(id) if !mailboxes[id].is_empty() => break Some(id),
                        Some(_) => continue,
                        None => break None,
                    }
                },
                Some(rng) => {
                    let nonempty: Vec<usize> =
                        (0..n).filter(|&i| !mailboxes[i].is_empty()).collect();
                    if nonempty.is_empty() {
                        None
                    } else {
                        Some(nonempty[rng.gen_range(0..nonempty.len())])
                    }
                }
            };
            let Some(id) = next else { break };
            let msg = mailboxes[id].pop_front().expect("token implies a message");
            steps += 1;
            if steps > self.max_steps {
                return Err(RuntimeError::Diverged { steps });
            }
            let mut ctx = Ctx {
                out: &mut out,
                stats: &mut stats,
                mailbox_empty: mailboxes[id].is_empty(),
            };
            network.processes[id].handle(msg, &mut ctx);
            for m in out.drain(..) {
                route(
                    m,
                    &mut mailboxes,
                    &mut fifo_tokens,
                    &mut stats,
                    &mut trace,
                    &mut engine_answers,
                    &mut end_seen,
                );
            }
        }

        if !end_seen {
            return Err(RuntimeError::NoTermination);
        }
        Ok(SimOutcome {
            answers: engine_answers,
            stats,
            trace,
        })
    }
}
