//! The threaded runtime: one OS thread per node over crossbeam channels.
//!
//! This realizes the paper's deployment claim directly: "No shared memory
//! is required … this formulation is amenable to parallel computation"
//! (§1.2). Each node owns its temporary relations; the only communication
//! is message passing. Channel sends are atomic enqueues, so the Fig 2
//! protocol's `empty_queues()` check (`Receiver::is_empty`) retains the
//! semantics it has in the simulator; the Mattern-style counters carried
//! on confirm waves add a defence-in-depth consistency check.
//!
//! With a [`FaultPlan`] attached, every channel send is wrapped in the
//! sequenced/acked/retransmitting transport of [`crate::fault`]: workers
//! exchange `Data`/`Ack` frames instead of bare messages, tick on a short
//! `recv_timeout` to release delayed frames and retransmit unacked ones,
//! and recover from scheduled crashes by replaying their durable message
//! log through a pristine process clone — the same write-ahead-log
//! semantics as the simulator (see DESIGN.md). Fault fates are pure
//! functions of `(seed, link, seq, attempt)`, so a plan injects the same
//! faults on the same logical message stream as the simulator does. The
//! clean path (`fault_plan: None`) sends `Plain` frames with no sequence
//! numbers, no acks, and no ticks — zero transport overhead.

use crate::fault::{endpoint_code, Accepted, CrashPoint, FaultPlan, ReceiverLink, SenderLink};
use crate::msg::{Endpoint, Msg, Payload};
use crate::node::{Ctx, Network, Process};
use crate::runtime::{describe_payload, trace_actor, RuntimeError, TRACE_RING_CAPACITY};
use crate::stats::Stats;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use mp_storage::{Relation, Tuple};
use mp_trace::{Event, Ring, Stamp, Trace, Tracer};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker tick when fault injection is active: the granularity at which
/// delayed frames are released and retransmissions checked.
const TICK: Duration = Duration::from_millis(2);

/// How long workers get to drain and exit after `Shutdown` before the
/// runtime detaches them and reports them as unjoined.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(500);

/// What actually travels on a channel. The clean path sends `Plain`
/// logical messages — the channel itself is the reliable FIFO link. The
/// fault path sends sequenced `Data` frames and cumulative `Ack`s, with
/// the link identified by the frame's endpoints (`msg.from` for data,
/// `peer` for acks).
#[derive(Clone, Debug)]
enum TMsg {
    /// A logical message on the reliable clean path, with its causal
    /// stamp when tracing is on (`None` otherwise — zero tracing cost).
    Plain(Msg, Option<Stamp>),
    /// A sequenced data frame on the faulty path.
    Data {
        seq: u64,
        msg: Msg,
        /// Checksum failure injected in flight: discarded on arrival.
        corrupted: bool,
        /// Causal stamp of the logical send, when tracing is on.
        /// Retransmissions carry the *same* stamp — one logical send,
        /// one stamp, however many frames it takes.
        stamp: Option<Stamp>,
    },
    /// Cumulative ack: everything `peer` received below `upto` on the
    /// link from this endpoint is delivered.
    Ack { peer: Endpoint, upto: u64 },
    /// A worker hit a fatal condition (crash with recovery disabled,
    /// retransmission budget exhausted); routed to the engine, which
    /// aborts the run with the carried error.
    Fatal(RuntimeError),
    /// Stop the worker loop.
    Shutdown,
}

/// Per-endpoint transport state, shared between workers and the engine:
/// logical sends, fault-injected framing, ack bookkeeping, delayed-frame
/// release, and retransmission. With `plan: None` it degenerates to
/// counting stats and forwarding `Plain` frames.
struct Transport {
    me: Endpoint,
    plan: Option<FaultPlan>,
    start: Instant,
    senders: Vec<Sender<TMsg>>,
    engine_tx: Sender<TMsg>,
    outgoing: BTreeMap<Endpoint, SenderLink>,
    incoming: BTreeMap<Endpoint, ReceiverLink>,
    /// Frames held back by an injected delay, with their release time.
    delayed: Vec<(Instant, Endpoint, TMsg)>,
    /// Distinct hash input per ack frame (acks have no sequence number).
    ack_uid: u64,
    stats: Stats,
    /// Event recorder for this endpoint; `None` when tracing is off.
    tracer: Option<Tracer>,
    /// Stamps of unacked sends, keyed by `(destination, seq)`, so
    /// retransmissions carry the original stamp. Pruned on ack.
    out_stamps: BTreeMap<(Endpoint, u64), Stamp>,
    /// Stamps of frames buffered out of order at the receiver, keyed by
    /// `(source, seq)`, popped when the frame becomes deliverable.
    in_stamps: BTreeMap<(Endpoint, u64), Stamp>,
}

impl Transport {
    fn new(
        me: Endpoint,
        plan: Option<FaultPlan>,
        start: Instant,
        senders: Vec<Sender<TMsg>>,
        engine_tx: Sender<TMsg>,
        tracer: Option<Tracer>,
    ) -> Transport {
        Transport {
            me,
            plan,
            start,
            senders,
            engine_tx,
            outgoing: BTreeMap::new(),
            incoming: BTreeMap::new(),
            delayed: Vec::new(),
            ack_uid: 0,
            stats: Stats::default(),
            tracer,
            out_stamps: BTreeMap::new(),
            in_stamps: BTreeMap::new(),
        }
    }

    /// Number of node endpoints (the engine is actor `n` in the trace).
    fn n_nodes(&self) -> usize {
        self.senders.len()
    }

    /// Milliseconds since the run started — the transport clock.
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn send_frame(&self, to: Endpoint, frame: TMsg) {
        // A failed send means the destination is gone (worker exited on
        // a fatal error); the Fatal frame it sent first aborts the run.
        match to {
            Endpoint::Engine => {
                let _ = self.engine_tx.send(frame);
            }
            Endpoint::Node(t) => {
                let _ = self.senders[t].send(frame);
            }
        }
    }

    /// A logical send: counted once (retransmissions and wire duplicates
    /// never inflate the message counters), stamped when tracing, then
    /// framed.
    fn send_logical(&mut self, m: Msg) {
        self.stats.count_send(&m.payload);
        let n = self.n_nodes();
        let stamp = self.tracer.as_mut().map(|tr| {
            let (kind, items, wave, epoch) = describe_payload(&m.payload);
            if items > 1 {
                tr.on_flush(items);
            }
            tr.on_send(trace_actor(m.to, n), kind, items, wave, epoch)
        });
        if self.plan.is_none() {
            self.send_frame(m.to, TMsg::Plain(m, stamp));
            return;
        }
        let to = m.to;
        let now = self.now_ms();
        let seq = self.outgoing.entry(to).or_default().send(m.clone(), now);
        if let Some(s) = stamp {
            self.out_stamps.insert((to, seq), s);
        }
        self.transmit(to, seq, m, 0);
    }

    /// Put one copy of a data frame on the wire, consulting the fault
    /// plan for its fate.
    fn transmit(&mut self, to: Endpoint, seq: u64, msg: Msg, attempt: u32) {
        let Some(plan) = &self.plan else {
            return;
        };
        let fate = plan.fate(endpoint_code(self.me), endpoint_code(to), seq, attempt);
        if fate.dropped {
            self.stats.fault_dropped += 1;
            return;
        }
        if fate.corrupted {
            self.stats.fault_corrupted += 1;
        }
        let stamp = self.out_stamps.get(&(to, seq)).cloned();
        let frame = TMsg::Data {
            seq,
            msg: msg.clone(),
            corrupted: fate.corrupted,
            stamp: stamp.clone(),
        };
        if fate.delay > 0 {
            self.stats.fault_delayed += 1;
            self.delayed.push((
                Instant::now() + Duration::from_millis(fate.delay),
                to,
                frame,
            ));
        } else {
            self.send_frame(to, frame);
        }
        if fate.duplicated {
            self.stats.fault_duplicated += 1;
            self.delayed.push((
                Instant::now() + Duration::from_millis(fate.delay + 1),
                to,
                TMsg::Data {
                    seq,
                    msg,
                    corrupted: false,
                    stamp,
                },
            ));
        }
    }

    /// Accept one data frame from `from`; returns the logical messages
    /// now deliverable in order, each paired with its causal stamp
    /// (empty for duplicates and reorder gaps).
    fn accept_data(
        &mut self,
        from: Endpoint,
        seq: u64,
        msg: Msg,
        stamp: Option<Stamp>,
    ) -> Vec<(Msg, Option<Stamp>)> {
        let (accepted, base, upto) = {
            let rl = self.incoming.entry(from).or_default();
            // Capture `next_expected` BEFORE accepting: a stale
            // duplicate (seq below it) must not park a stamp that
            // nothing will ever pop.
            let base = rl.next_expected;
            if seq >= base {
                if let Some(s) = stamp {
                    self.in_stamps.entry((from, seq)).or_insert(s);
                }
            }
            let a = rl.accept(seq, msg);
            (a, base, rl.next_expected)
        };
        match accepted {
            Accepted::Deliver(msgs) => {
                self.send_ack(from, upto);
                // In-order release: the delivered run is exactly the
                // sequence window `base..upto`.
                msgs.into_iter()
                    .enumerate()
                    .map(|(i, m)| (m, self.in_stamps.remove(&(from, base + i as u64))))
                    .collect()
            }
            Accepted::Duplicate => {
                self.stats.dups_discarded += 1;
                self.send_ack(from, upto);
                Vec::new()
            }
            Accepted::Buffered => Vec::new(),
        }
    }

    /// Send a cumulative ack back to `to`. Acks ride the same faulty
    /// wire (a lost ack is repaired by the next one — they are
    /// cumulative) but are never duplicated; a corrupt ack is just a
    /// lost ack.
    fn send_ack(&mut self, to: Endpoint, upto: u64) {
        self.ack_uid += 1;
        let uid = self.ack_uid;
        let Some(plan) = &self.plan else {
            return;
        };
        self.stats.acks += 1;
        let n = self.n_nodes();
        if let Some(tr) = self.tracer.as_mut() {
            tr.on_ack(trace_actor(to, n), upto);
        }
        let fate = plan.fate(endpoint_code(self.me), endpoint_code(to), uid, u32::MAX);
        if fate.dropped || fate.corrupted {
            self.stats.fault_dropped += 1;
            return;
        }
        let frame = TMsg::Ack {
            peer: self.me,
            upto,
        };
        if fate.delay > 0 {
            self.delayed.push((
                Instant::now() + Duration::from_millis(fate.delay),
                to,
                frame,
            ));
        } else {
            self.send_frame(to, frame);
        }
    }

    fn on_ack(&mut self, peer: Endpoint, upto: u64) {
        if let Some(s) = self.outgoing.get_mut(&peer) {
            s.ack_upto(upto);
        }
        // Acked sends can never be retransmitted; drop their stamps.
        if !self.out_stamps.is_empty() {
            self.out_stamps.retain(|&(p, s), _| p != peer || s >= upto);
        }
    }

    /// Release every delayed frame whose time has come.
    fn flush_delayed(&mut self) {
        if self.delayed.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                let (_, to, frame) = self.delayed.swap_remove(i);
                self.send_frame(to, frame);
            } else {
                i += 1;
            }
        }
    }

    /// Retransmit unacked messages on links idle past the plan's
    /// `retransmit_after` horizon (interpreted as milliseconds here).
    fn retransmit_due(&mut self) -> Result<(), RuntimeError> {
        let (after, max_retries) = match &self.plan {
            Some(p) => (p.retransmit_after, p.max_retries),
            None => return Ok(()),
        };
        let now = self.now_ms();
        let due: Vec<Endpoint> = self
            .outgoing
            .iter()
            .filter(|(_, s)| s.due(now, after))
            .map(|(&to, _)| to)
            .collect();
        for to in due {
            let (retries, frames) = {
                let Some(s) = self.outgoing.get_mut(&to) else {
                    continue;
                };
                s.retries += 1;
                s.last_activity = now;
                let frames: Vec<(u64, Msg)> =
                    s.unacked.iter().map(|(&q, m)| (q, m.clone())).collect();
                (s.retries, frames)
            };
            if retries > max_retries {
                return Err(RuntimeError::RetransmitExhausted {
                    from: self.me.node().unwrap_or(usize::MAX),
                    to: to.node().unwrap_or(usize::MAX),
                    retries,
                });
            }
            for (seq, msg) in frames {
                self.stats.retransmits += 1;
                self.transmit(to, seq, msg, retries);
            }
        }
        Ok(())
    }
}

/// One node's worker thread: its process, transport endpoint, durable
/// message log, and crash/recovery state.
struct Worker {
    id: usize,
    process: Process,
    /// Initial-state clone for crash recovery (fault mode only).
    pristine: Option<Process>,
    recovery: bool,
    /// This node's scheduled crash points.
    crashes: Vec<CrashPoint>,
    rx: Receiver<TMsg>,
    t: Transport,
    /// Durable log of every processed message, in processing order.
    log: Vec<Msg>,
    /// Restart generation.
    epoch: u64,
    /// Reusable output buffer for `Process::handle`.
    scratch: Vec<Msg>,
}

impl Worker {
    fn run(mut self) -> Stats {
        let fault_mode = self.t.plan.is_some();
        loop {
            let recv = if fault_mode {
                self.rx.recv_timeout(TICK)
            } else {
                match self.rx.recv() {
                    Ok(m) => Ok(m),
                    Err(_) => Err(RecvTimeoutError::Disconnected),
                }
            };
            let mut fatal = false;
            match recv {
                Ok(TMsg::Shutdown) => break,
                Ok(TMsg::Plain(msg, stamp)) => fatal = !self.process_msg(msg, stamp),
                Ok(TMsg::Data {
                    seq,
                    msg,
                    corrupted,
                    stamp,
                }) => {
                    if !corrupted {
                        let from = msg.from;
                        for (m, s) in self.t.accept_data(from, seq, msg, stamp) {
                            if !self.process_msg(m, s) {
                                fatal = true;
                                break;
                            }
                        }
                    }
                }
                Ok(TMsg::Ack { peer, upto }) => self.t.on_ack(peer, upto),
                // Fatal frames are addressed to the engine only.
                Ok(TMsg::Fatal(_)) => {}
                // Idle tick: nudge the process. Transport frames drain
                // from the same queue as logical messages, so the
                // empty-mailbox moment that triggers batch flushes and
                // probe origination can pass unseen by `handle`.
                Err(RecvTimeoutError::Timeout) => self.poke(),
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if fatal {
                break;
            }
            if fault_mode {
                self.t.flush_delayed();
                if let Err(e) = self.t.retransmit_due() {
                    let _ = self.t.engine_tx.send(TMsg::Fatal(e));
                    break;
                }
            }
        }
        self.t.stats
    }

    /// Idle-time nudge: give the process its batch-flush / probe-
    /// origination chance when the queue has drained without a logical
    /// message (see [`Process::poke`]). Not logged: poke output is
    /// protocol state, which crash recovery deliberately rebuilds from
    /// fresh waves rather than replay.
    fn poke(&mut self) {
        let mailbox_empty = self.rx.is_empty();
        let mut ctx = Ctx {
            out: &mut self.scratch,
            stats: &mut self.t.stats,
            mailbox_empty,
            tracer: self.t.tracer.as_mut(),
        };
        self.process.poke(&mut ctx);
        for m in self.scratch.drain(..) {
            self.t.send_logical(m);
        }
    }

    /// Handle one delivered logical message; returns `false` when the
    /// worker must exit (crash with recovery disabled).
    fn process_msg(&mut self, msg: Msg, stamp: Option<Stamp>) -> bool {
        if self.t.plan.is_some() {
            self.log.push(msg.clone());
        }
        if let Some(tr) = self.t.tracer.as_mut() {
            let (kind, items, wave, epoch) = describe_payload(&msg.payload);
            let from = trace_actor(msg.from, self.t.senders.len());
            tr.on_deliver(from, stamp.as_ref(), kind, items, wave, epoch);
        }
        let mailbox_empty = self.rx.is_empty();
        let mut ctx = Ctx {
            out: &mut self.scratch,
            stats: &mut self.t.stats,
            mailbox_empty,
            tracer: self.t.tracer.as_mut(),
        };
        self.process.handle(msg, &mut ctx);
        for m in self.scratch.drain(..) {
            self.t.send_logical(m);
        }
        self.maybe_crash()
    }

    /// Crash the node if its processed-message count hit a scheduled
    /// crash point, then recover it by replaying the durable log through
    /// a pristine clone (or report a fatal error, with recovery
    /// disabled). Mirrors the simulator's recovery exactly.
    fn maybe_crash(&mut self) -> bool {
        if self.crashes.is_empty() {
            return true;
        }
        let processed = self.log.len() as u64;
        if !self.crashes.iter().any(|c| c.after_processed == processed) {
            return true;
        }
        if !self.recovery {
            let _ = self
                .t
                .engine_tx
                .send(TMsg::Fatal(RuntimeError::LinkDown { node: self.id }));
            return false;
        }
        let mut fresh = match &self.pristine {
            Some(p) => p.clone(),
            None => return true,
        };
        self.t.stats.crashes += 1;
        self.epoch += 1;
        self.t.stats.epoch_bumps += 1;
        if let Some(tr) = self.t.tracer.as_mut() {
            tr.on_crash(self.epoch);
        }

        // Volatile transport state into the node is lost; the senders'
        // unacked buffers (durable, like a WAL) retransmit the contents.
        for r in self.t.incoming.values_mut() {
            r.clear_volatile();
        }

        // Rebuild computation state: pristine clone + deterministic
        // replay of the durable log. Outputs are discarded — they were
        // already sent (and sequenced durably) pre-crash. Wave probes
        // and replies are not replayed: protocol state resets at restart
        // and is rebuilt by fresh epoch-tagged waves. `SccFinished` IS
        // replayed — durable component state, not wave state. A scratch
        // stats sink keeps replayed work out of the run's counters.
        let mut scratch_stats = Stats::default();
        let mut discard: Vec<Msg> = Vec::new();
        let mut replayed: u64 = 0;
        for m in &self.log {
            let skip = matches!(
                m.payload,
                Payload::EndRequest { .. }
                    | Payload::EndNegative { .. }
                    | Payload::EndConfirmed { .. }
                    | Payload::Reborn { .. }
            );
            if skip {
                continue;
            }
            let mut ctx = Ctx {
                out: &mut discard,
                stats: &mut scratch_stats,
                // Never report an empty mailbox during replay: a leader
                // must not originate a probe wave whose messages would
                // be discarded.
                mailbox_empty: false,
                // Replayed deliveries were already recorded pre-crash;
                // recording them again would double-count.
                tracer: None,
            };
            fresh.handle(m.clone(), &mut ctx);
            discard.clear();
            replayed += 1;
        }
        self.t.stats.replayed += replayed;
        if let Some(tr) = self.t.tracer.as_mut() {
            tr.on_recover(self.epoch, replayed);
        }
        self.process = fresh;
        // Announce the rebirth (aborts any wave in flight at the BFST
        // parent) with the bumped epoch.
        let mut out: Vec<Msg> = Vec::new();
        self.process.restarted(self.epoch, &mut out);
        for m in out {
            self.t.send_logical(m);
        }
        true
    }
}

/// Consume one logical message at the engine endpoint. Returns `Ok(true)`
/// on the final `End`, `Ok(false)` to keep collecting, or a typed error —
/// never panics, whatever arrives.
fn engine_accept(
    msg: Msg,
    answers: &mut Relation,
    engine_ends: &mut u64,
    post_end_answers: &mut u64,
    answer_arity: usize,
) -> Result<bool, RuntimeError> {
    let mut accept_one = |tuple: mp_storage::Tuple| -> Result<(), RuntimeError> {
        if *engine_ends > 0 {
            *post_end_answers += 1;
        }
        let got = tuple.arity();
        if answers.insert(tuple).is_err() {
            return Err(RuntimeError::AnswerArity {
                expected: answer_arity,
                got,
                partial_answers: answers.len(),
            });
        }
        Ok(())
    };
    match msg.payload {
        Payload::Answer { tuple } => {
            accept_one(tuple)?;
            Ok(false)
        }
        Payload::AnswerBatch { tuples } => {
            for tuple in tuples {
                accept_one(tuple)?;
            }
            Ok(false)
        }
        Payload::End => {
            *engine_ends += 1;
            Ok(true)
        }
        Payload::EndTupleRequest { .. } | Payload::EndTupleRequestBatch { .. } => Ok(false),
        other => Err(RuntimeError::UnexpectedEngineMessage {
            kind: other.kind_name(),
        }),
    }
}

/// Result of a threaded run (same shape as the simulator's).
#[derive(Clone, Debug)]
pub struct ThreadOutcome {
    /// The answer relation.
    pub answers: Relation,
    /// Merged per-node stats.
    pub stats: Stats,
    /// Clock-stamped event trace, if requested: the input to
    /// `mp_trace::check` and to deterministic replay in the simulator.
    pub events: Option<Trace>,
    /// `End` messages delivered to the engine before it stopped
    /// collecting (Thm 3.1 observable: must be exactly 1 on success).
    pub engine_ends: u64,
    /// Answers delivered after the final `End` and before the engine
    /// stopped collecting (Thm 3.1 observable: must be 0).
    pub post_end_answers: u64,
}

/// The threaded runtime.
#[derive(Clone, Debug)]
pub struct ThreadRuntime {
    /// Wall-clock budget for the whole evaluation.
    pub timeout: Duration,
    /// Fault-injection plan; `None` runs the pristine 1986 model with
    /// zero transport overhead. Delay and retransmission horizons are
    /// interpreted as milliseconds here.
    pub fault_plan: Option<FaultPlan>,
    /// Recover crashed nodes by log replay. With recovery disabled a
    /// scheduled crash aborts the run with [`RuntimeError::LinkDown`].
    pub recovery: bool,
    /// Record a clock-stamped event trace ([`ThreadOutcome::events`]).
    /// Off by default: the untraced path carries `None` stamps and
    /// skips every recording branch — zero measurable overhead (E12).
    pub trace: bool,
}

impl Default for ThreadRuntime {
    fn default() -> Self {
        ThreadRuntime {
            timeout: Duration::from_secs(60),
            fault_plan: None,
            recovery: true,
            trace: false,
        }
    }
}

impl ThreadRuntime {
    /// Run the network to completion on one thread per node.
    pub fn run(&self, network: Network) -> Result<ThreadOutcome, RuntimeError> {
        self.run_with_requests(network, std::iter::once(Tuple::unit()))
    }

    /// [`ThreadRuntime::run`] with explicit top-level tuple requests.
    pub fn run_with_requests(
        &self,
        network: Network,
        requests: impl IntoIterator<Item = Tuple>,
    ) -> Result<ThreadOutcome, RuntimeError> {
        let n = network.processes.len();
        let answer_arity = network.answer_arity;
        let root = network.root;
        let fault_mode = self.fault_plan.is_some();
        let start = Instant::now();

        let mut txs: Vec<Sender<TMsg>> = Vec::with_capacity(n);
        let mut rxs: Vec<Receiver<TMsg>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        // Receiver clones share the queue: the engine keeps one per node
        // to report pending mailbox depths in timeout diagnostics.
        let probes: Vec<Receiver<TMsg>> = rxs.to_vec();
        let (engine_tx, engine_rx) = unbounded::<TMsg>();

        // One shared lock-free ring for every actor's events; the trace
        // is collected from it after the workers join.
        let ring: Option<Arc<Ring<Event>>> = if self.trace {
            Some(Arc::new(Ring::with_capacity(TRACE_RING_CAPACITY)))
        } else {
            None
        };
        let mk_tracer = |actor: usize| {
            ring.as_ref()
                .map(|r| Tracer::new(actor as u32, (n + 1) as u32, Arc::clone(r)))
        };

        let mut handles = Vec::with_capacity(n);
        for ((id, process), rx) in network.processes.into_iter().enumerate().zip(rxs) {
            let plan = self.fault_plan.clone();
            let crashes: Vec<CrashPoint> = plan
                .as_ref()
                .map(|p| p.crashes.iter().filter(|c| c.node == id).copied().collect())
                .unwrap_or_default();
            let pristine = if fault_mode {
                Some(process.clone())
            } else {
                None
            };
            let worker = Worker {
                id,
                process,
                pristine,
                recovery: self.recovery,
                crashes,
                rx,
                t: Transport::new(
                    Endpoint::Node(id),
                    plan,
                    start,
                    txs.clone(),
                    engine_tx.clone(),
                    mk_tracer(id),
                ),
                log: Vec::new(),
                epoch: 0,
                scratch: Vec::new(),
            };
            let spawned = std::thread::Builder::new()
                .name(format!("mp-node-{id}"))
                .spawn(move || worker.run());
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    // Release the workers already running before bailing.
                    for tx in &txs {
                        let _ = tx.send(TMsg::Shutdown);
                    }
                    return Err(RuntimeError::WorkerSpawn {
                        node: id,
                        reason: e.to_string(),
                    });
                }
            }
        }

        // The engine's own transport endpoint: injects the query and,
        // in fault mode, acks/retransmits on the links to and from the
        // root node.
        let mut t = Transport::new(
            Endpoint::Engine,
            self.fault_plan.clone(),
            start,
            txs.clone(),
            engine_tx.clone(),
            mk_tracer(n),
        );
        let to_root = Endpoint::Node(root);
        t.send_logical(Msg {
            from: Endpoint::Engine,
            to: to_root,
            payload: Payload::RelationRequest,
        });
        for b in requests {
            t.send_logical(Msg {
                from: Endpoint::Engine,
                to: to_root,
                payload: Payload::TupleRequest { binding: b },
            });
        }
        t.send_logical(Msg {
            from: Endpoint::Engine,
            to: to_root,
            payload: Payload::EndOfRequests,
        });

        // Collect until the final End (or timeout).
        let deadline = start + self.timeout;
        let mut answers = Relation::new(answer_arity);
        let mut engine_ends: u64 = 0;
        let mut post_end_answers: u64 = 0;
        let mut result: Result<(), RuntimeError> = loop {
            let now = Instant::now();
            if now >= deadline {
                break Err(self.timeout_error(start, &answers, &probes));
            }
            let wait = if fault_mode {
                TICK.min(deadline - now)
            } else {
                deadline - now
            };
            match engine_rx.recv_timeout(wait) {
                Ok(frame) => {
                    let msgs: Vec<(Msg, Option<Stamp>)> = match frame {
                        TMsg::Plain(m, s) => vec![(m, s)],
                        TMsg::Data {
                            seq,
                            msg,
                            corrupted,
                            stamp,
                        } => {
                            if corrupted {
                                Vec::new()
                            } else {
                                let from = msg.from;
                                t.accept_data(from, seq, msg, stamp)
                            }
                        }
                        TMsg::Ack { peer, upto } => {
                            t.on_ack(peer, upto);
                            Vec::new()
                        }
                        TMsg::Fatal(e) => break Err(e),
                        TMsg::Shutdown => Vec::new(),
                    };
                    let mut flow: Result<bool, RuntimeError> = Ok(false);
                    for (m, s) in msgs {
                        if let Some(tr) = t.tracer.as_mut() {
                            let (kind, items, wave, epoch) = describe_payload(&m.payload);
                            tr.on_deliver(
                                trace_actor(m.from, n),
                                s.as_ref(),
                                kind,
                                items,
                                wave,
                                epoch,
                            );
                            if matches!(m.payload, Payload::End) {
                                tr.on_end();
                            }
                        }
                        flow = engine_accept(
                            m,
                            &mut answers,
                            &mut engine_ends,
                            &mut post_end_answers,
                            answer_arity,
                        );
                        if !matches!(flow, Ok(false)) {
                            break;
                        }
                    }
                    match flow {
                        Ok(true) => break Ok(()),
                        Err(e) => break Err(e),
                        Ok(false) => {}
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break Err(RuntimeError::NoTermination),
            }
            if fault_mode {
                t.flush_delayed();
                if let Err(e) = t.retransmit_due() {
                    break Err(e);
                }
            }
        };

        // Shut everything down: broadcast Shutdown, then join with a
        // bounded grace period — a stuck worker is detached and reported
        // instead of hanging the caller past its own deadline.
        for tx in &txs {
            let _ = tx.send(TMsg::Shutdown);
        }
        let mut stats = t.stats;
        let grace_deadline = Instant::now() + SHUTDOWN_GRACE;
        let mut remaining: Vec<(usize, std::thread::JoinHandle<Stats>)> =
            handles.into_iter().enumerate().collect();
        loop {
            let mut still = Vec::new();
            for (id, h) in remaining {
                if h.is_finished() {
                    if let Ok(s) = h.join() {
                        stats.merge(&s);
                    }
                } else {
                    still.push((id, h));
                }
            }
            remaining = still;
            if remaining.is_empty() || Instant::now() >= grace_deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let unjoined: Vec<usize> = remaining.iter().map(|(id, _)| *id).collect();
        // Dropping the handles detaches the stuck workers.
        drop(remaining);
        if let Err(RuntimeError::Timeout { unjoined: u, .. }) = &mut result {
            *u = unjoined;
        }
        let events = ring.map(|r| mp_trace::collect((n + 1) as u32, &r));
        result.map(|()| ThreadOutcome {
            answers,
            stats,
            events,
            engine_ends,
            post_end_answers,
        })
    }

    /// Build the diagnostic timeout error from abort-time state; the
    /// `unjoined` list is filled in after the shutdown drain.
    fn timeout_error(
        &self,
        start: Instant,
        answers: &Relation,
        probes: &[Receiver<TMsg>],
    ) -> RuntimeError {
        RuntimeError::Timeout {
            budget_millis: self.timeout.as_millis() as u64,
            elapsed_millis: start.elapsed().as_millis() as u64,
            partial_answers: answers.len(),
            pending: probes
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.is_empty())
                .map(|(i, r)| (i, r.len()))
                .collect(),
            unjoined: Vec::new(),
        }
    }
}
