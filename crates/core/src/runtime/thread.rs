//! The threaded runtime: a fixed-size worker pool with work-stealing
//! activation deques over per-node mailboxes.
//!
//! This realizes the paper's deployment claim — "No shared memory is
//! required … this formulation is amenable to parallel computation"
//! (§1.2) — without the thread-per-node structure the first cut had: a
//! 200-node rule/goal graph must not thrash 8 cores with 200 threads,
//! and a 5-node transitive-closure graph must still use all of them.
//! Nodes are *tasks*, not threads. Each node owns a FIFO mailbox; a
//! message arriving at an empty-handed node enqueues one **activation**
//! of that node onto the sending worker's deque (or the shared injector
//! when the engine sends). Workers drain their own deque front-first,
//! fall back to the injector, and steal from the back of a peer's deque
//! when both are empty.
//!
//! The **scheduled bit** (one `AtomicBool` per node) guarantees at most
//! one activation of a node is queued or running at any time: the sender
//! that flips it false→true enqueues; everyone else just appends to the
//! mailbox. An activation drains the mailbox, clears the bit, and
//! re-checks — the re-check catches messages that raced the clear, so no
//! wakeup is lost. One-activation-at-a-time is what preserves the
//! simulator's semantics: a node's messages are processed sequentially
//! in mailbox order, so per-link FIFO delivery (which the transport
//! guarantees into the mailbox) is per-link FIFO *processing*, exactly
//! the §3.1 model. A per-node mutex around the node state is the
//! belt-and-braces backstop making the handoff between consecutive
//! activations on different workers a proper synchronization edge.
//!
//! With a [`FaultPlan`] attached, every logical send is wrapped in the
//! sequenced/acked/retransmitting transport of [`crate::fault`]: nodes
//! exchange `Data`/`Ack` frames instead of bare messages, workers tick
//! their assigned nodes every [`TICK`] to release delayed frames,
//! retransmit unacked ones and give idle nodes their probe-origination
//! nudge, and scheduled crashes are recovered by replaying the node's
//! durable message log through a pristine process clone — the same
//! write-ahead-log semantics as the simulator (see DESIGN.md). Fault
//! fates are pure functions of `(seed, link, seq, attempt)`, so a plan
//! injects the same faults on the same logical message stream as the
//! simulator does. The clean path (`fault_plan: None`) sends `Plain`
//! frames with no sequence numbers, no acks, and no ticks — zero
//! transport overhead.
//!
//! Sharded evaluation is likewise invisible here: the pool schedules
//! physical processes, of which a sharded node simply contributes `K`.
//! Routing by partition-key hash happens inside the node layer with the
//! same deterministic hasher as the simulator, so both runtimes split
//! traffic across shard links identically; the two-level termination
//! wave rides the captain-extended BFST compiled into each instance's
//! `TermState`, and those captain links are registered as intra pairs so
//! the credit window never throttles the wave (see DESIGN.md).

use crate::fault::{endpoint_code, Accepted, CrashPoint, FaultPlan, ReceiverLink, SenderLink};
use crate::msg::{Endpoint, Msg, Payload};
use crate::node::{Ctx, Network, Process};
use crate::runtime::govern::{CancelToken, Governor, NodeUsage, QueryBudget, Trip};
use crate::runtime::{
    budget_error, describe_payload, trace_actor, RuntimeError, TRACE_RING_CAPACITY,
};
use crate::stats::Stats;
use crossbeam_channel::{unbounded, RecvTimeoutError, Sender};
use mp_storage::{Relation, Tuple};
use mp_trace::{Event, Ring, Stamp, Trace, Tracer};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Worker tick when fault injection is active: the granularity at which
/// delayed frames are released and retransmissions checked.
const TICK: Duration = Duration::from_millis(2);

/// How long workers get to drain and exit after shutdown before the
/// runtime detaches them and reports them as unjoined.
const SHUTDOWN_GRACE: Duration = Duration::from_millis(500);

/// Frames one activation may process before it must yield: the node is
/// re-enqueued (scheduled-bit re-check) so a hot node cannot monopolize
/// a worker against the shutdown signal, and in fault mode delayed-frame
/// release and retransmission stay timely under a steady inflow.
const ACTIVATION_BUDGET: usize = 256;

/// Within an activation, run the transport maintenance (delayed-frame
/// release, retransmission scan) every this many frames — the threaded
/// analogue of the simulator's 64-step retransmission cadence.
const MAINTENANCE_EVERY: usize = 64;

/// What actually travels through a mailbox. The clean path sends `Plain`
/// logical messages — the mailbox itself is the reliable FIFO link. The
/// fault path sends sequenced `Data` frames and cumulative `Ack`s, with
/// the link identified by the frame's endpoints (`msg.from` for data,
/// `peer` for acks).
#[derive(Clone, Debug)]
enum TMsg {
    /// A logical message on the reliable clean path, with its causal
    /// stamp when tracing is on (`None` otherwise — zero tracing cost).
    Plain(Msg, Option<Stamp>),
    /// A sequenced data frame on the faulty path.
    Data {
        seq: u64,
        msg: Msg,
        /// Checksum failure injected in flight: discarded on arrival.
        corrupted: bool,
        /// Causal stamp of the logical send, when tracing is on.
        /// Retransmissions carry the *same* stamp — one logical send,
        /// one stamp, however many frames it takes.
        stamp: Option<Stamp>,
    },
    /// Cumulative ack: everything `peer` received below `upto` on the
    /// link from this endpoint is delivered.
    Ack { peer: Endpoint, upto: u64 },
    /// A node hit a fatal condition (crash with recovery disabled,
    /// retransmission budget exhausted); routed to the engine, which
    /// aborts the run with the carried error.
    Fatal(RuntimeError),
}

/// One node's FIFO mailbox plus its scheduled bit. The bit is true
/// exactly while an activation for the node is queued or running; the
/// sender that flips it false→true owns the enqueue.
struct Mailbox {
    q: Mutex<VecDeque<TMsg>>,
    scheduled: AtomicBool,
}

/// Everything under the scheduler lock: the per-worker deques, the
/// injector the engine feeds, the idle-worker count for targeted
/// wakeups, and the behavior counters.
struct SchedState {
    /// Per-worker activation deques: the owner pops the front (FIFO for
    /// its own work), thieves pop the back.
    locals: Vec<VecDeque<u32>>,
    /// Activations enqueued from outside the pool (the engine thread).
    injector: VecDeque<u32>,
    /// Workers currently parked on the condvar.
    idle: usize,
    shutdown: bool,
    /// Activations handed to workers.
    activations: u64,
    /// Activations taken from another worker's deque.
    steals: u64,
    /// Idle transitions after a steal sweep found every deque empty.
    steal_failures: u64,
    /// High-water mark of queued activations across all deques.
    max_queue_depth: u64,
}

/// The shared fabric of one pool run: mailboxes and the scheduler.
struct PoolNet {
    mailboxes: Vec<Mailbox>,
    sched: Mutex<SchedState>,
    cv: Condvar,
    /// Shared resource accounting: every enqueue/dequeue is charged to
    /// the memory budget here, whichever thread performs it.
    governor: Arc<Governor>,
    /// High-water mark of any single mailbox's depth.
    mailbox_hw: AtomicU64,
}

/// Approximate heap bytes of a mailbox frame, for the memory budget.
/// Transport control frames (acks, fatals) carry no tuples and are
/// free.
fn frame_bytes(f: &TMsg) -> u64 {
    match f {
        TMsg::Plain(m, _) | TMsg::Data { msg: m, .. } => m.payload.approx_bytes(),
        TMsg::Ack { .. } | TMsg::Fatal(_) => 0,
    }
}

/// What a worker does next.
enum Task {
    /// Activate this node (drain its mailbox).
    Run(u32),
    /// Fault-mode tick deadline reached while idle: run transport
    /// maintenance on the worker's assigned nodes.
    Tick,
    /// Shutdown was signalled.
    Stop,
}

impl PoolNet {
    fn new(n: usize, workers: usize, governor: Arc<Governor>) -> PoolNet {
        PoolNet {
            mailboxes: (0..n)
                .map(|_| Mailbox {
                    q: Mutex::new(VecDeque::new()),
                    scheduled: AtomicBool::new(false),
                })
                .collect(),
            sched: Mutex::new(SchedState {
                locals: vec![VecDeque::new(); workers],
                injector: VecDeque::new(),
                idle: 0,
                shutdown: false,
                activations: 0,
                steals: 0,
                steal_failures: 0,
                max_queue_depth: 0,
            }),
            cv: Condvar::new(),
            governor,
            mailbox_hw: AtomicU64::new(0),
        }
    }

    fn n_nodes(&self) -> usize {
        self.mailboxes.len()
    }

    /// Deliver a frame to a node's mailbox; if the node was unscheduled,
    /// enqueue its activation on `hint`'s deque (a pool worker keeps its
    /// own sends local) or the injector (the engine thread).
    fn post(&self, to: usize, frame: TMsg, hint: Option<usize>) {
        self.governor.note_enqueue(frame_bytes(&frame));
        let depth = {
            let mut q = self.mailboxes[to].q.lock().unwrap();
            q.push_back(frame);
            q.len()
        };
        self.mailbox_hw.fetch_max(depth as u64, Ordering::Relaxed);
        if !self.mailboxes[to].scheduled.swap(true, Ordering::AcqRel) {
            self.enqueue(to as u32, hint);
        }
    }

    fn enqueue(&self, node: u32, hint: Option<usize>) {
        let mut s = self.sched.lock().unwrap();
        match hint {
            Some(w) => s.locals[w].push_back(node),
            None => s.injector.push_back(node),
        }
        let depth = s.injector.len() + s.locals.iter().map(VecDeque::len).sum::<usize>();
        s.max_queue_depth = s.max_queue_depth.max(depth as u64);
        let any_idle = s.idle > 0;
        drop(s);
        if any_idle {
            self.cv.notify_one();
        }
    }

    /// Re-check a node's mailbox after clearing its scheduled bit; a
    /// message that raced the clear re-schedules the node here (the
    /// lost-wakeup guard of the scheduled-bit protocol).
    fn reschedule_if_nonempty(&self, node: usize, hint: Option<usize>) {
        let mb = &self.mailboxes[node];
        mb.scheduled.store(false, Ordering::Release);
        if !mb.q.lock().unwrap().is_empty() && !mb.scheduled.swap(true, Ordering::AcqRel) {
            self.enqueue(node as u32, hint);
        }
    }

    /// Worker `wid`'s next task: own deque front, then the injector,
    /// then a steal from the back of a peer's deque; park when all are
    /// empty. With `tick` set (fault mode), parking times out at the
    /// worker's next maintenance deadline.
    fn next_task(&self, wid: usize, tick: Option<Duration>) -> Task {
        let mut s = self.sched.lock().unwrap();
        loop {
            if s.shutdown {
                return Task::Stop;
            }
            if let Some(n) = s.locals[wid].pop_front() {
                s.activations += 1;
                return Task::Run(n);
            }
            if let Some(n) = s.injector.pop_front() {
                s.activations += 1;
                return Task::Run(n);
            }
            let workers = s.locals.len();
            let mut stolen = None;
            for k in 1..workers {
                let victim = (wid + k) % workers;
                if let Some(n) = s.locals[victim].pop_back() {
                    stolen = Some(n);
                    break;
                }
            }
            if let Some(n) = stolen {
                s.steals += 1;
                s.activations += 1;
                return Task::Run(n);
            }
            if workers > 1 {
                s.steal_failures += 1;
            }
            s.idle += 1;
            match tick {
                Some(d) => {
                    let (guard, timeout) = self.cv.wait_timeout(s, d).unwrap();
                    s = guard;
                    s.idle -= 1;
                    if timeout.timed_out() {
                        return Task::Tick;
                    }
                }
                None => {
                    s = self.cv.wait(s).unwrap();
                    s.idle -= 1;
                }
            }
        }
    }

    fn shutdown(&self) {
        self.sched.lock().unwrap().shutdown = true;
        self.cv.notify_all();
    }

    /// Non-empty mailboxes, for timeout diagnostics.
    fn pending(&self) -> Vec<(usize, usize)> {
        self.mailboxes
            .iter()
            .enumerate()
            .filter_map(|(i, mb)| {
                let len = mb.q.lock().unwrap().len();
                (len > 0).then_some((i, len))
            })
            .collect()
    }

    /// Fold the scheduler's behavior counters into the run stats.
    fn merge_sched_stats(&self, stats: &mut Stats) {
        let s = self.sched.lock().unwrap();
        stats.sched_activations += s.activations;
        stats.sched_steals += s.steals;
        stats.sched_steal_failures += s.steal_failures;
        stats.sched_max_queue = stats.sched_max_queue.max(s.max_queue_depth);
        stats.mailbox_high_water = stats
            .mailbox_high_water
            .max(self.mailbox_hw.load(Ordering::Relaxed));
    }
}

/// Per-endpoint transport state: logical sends, fault-injected framing,
/// ack bookkeeping, delayed-frame release, and retransmission. With
/// `plan: None` it degenerates to counting stats and forwarding `Plain`
/// frames. Node transports live inside the node's [`NodeState`] (driven
/// by whichever worker holds the activation); the engine thread owns its
/// own.
struct Transport {
    me: Endpoint,
    plan: Option<FaultPlan>,
    start: Instant,
    net: Arc<PoolNet>,
    engine_tx: Sender<TMsg>,
    /// The worker currently driving this endpoint (`None` on the engine
    /// thread): its deque receives the activations this endpoint's sends
    /// trigger.
    hint: Option<usize>,
    outgoing: BTreeMap<Endpoint, SenderLink>,
    incoming: BTreeMap<Endpoint, ReceiverLink>,
    /// Shared resource accounting (logical-message budget).
    governor: Arc<Governor>,
    /// Credit window (frames in flight per link) from the budget's
    /// mailbox bound; `None` = unlimited.
    window: Option<u64>,
    /// Directed node pairs inside nontrivial strong components; their
    /// links are never windowed (deadlock freedom — see
    /// [`Network::intra_pairs`]).
    intra: Arc<BTreeSet<(usize, usize)>>,
    /// Frames held back by an injected delay, with their release time.
    delayed: Vec<(Instant, Endpoint, TMsg)>,
    /// Distinct hash input per ack frame (acks have no sequence number).
    ack_uid: u64,
    stats: Stats,
    /// Event recorder for this endpoint; `None` when tracing is off.
    tracer: Option<Tracer>,
    /// Stamps of unacked sends, keyed by `(destination, seq)`, so
    /// retransmissions carry the original stamp. Pruned on ack.
    out_stamps: BTreeMap<(Endpoint, u64), Stamp>,
    /// Stamps of frames buffered out of order at the receiver, keyed by
    /// `(source, seq)`, popped when the frame becomes deliverable.
    in_stamps: BTreeMap<(Endpoint, u64), Stamp>,
}

impl Transport {
    #[allow(clippy::too_many_arguments)]
    fn new(
        me: Endpoint,
        plan: Option<FaultPlan>,
        start: Instant,
        net: Arc<PoolNet>,
        engine_tx: Sender<TMsg>,
        tracer: Option<Tracer>,
        window: Option<u64>,
        intra: Arc<BTreeSet<(usize, usize)>>,
    ) -> Transport {
        let governor = Arc::clone(&net.governor);
        Transport {
            me,
            plan,
            start,
            net,
            engine_tx,
            hint: None,
            outgoing: BTreeMap::new(),
            incoming: BTreeMap::new(),
            governor,
            window,
            intra,
            delayed: Vec::new(),
            ack_uid: 0,
            stats: Stats::default(),
            tracer,
            out_stamps: BTreeMap::new(),
            in_stamps: BTreeMap::new(),
        }
    }

    /// Number of node endpoints (the engine is actor `n` in the trace).
    fn n_nodes(&self) -> usize {
        self.net.n_nodes()
    }

    /// Milliseconds since the run started — the transport clock.
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn send_frame(&self, to: Endpoint, frame: TMsg) {
        // A failed engine send means the engine stopped collecting; the
        // run is already being torn down.
        match to {
            Endpoint::Engine => {
                let _ = self.engine_tx.send(frame);
            }
            Endpoint::Node(t) => self.net.post(t, frame, self.hint),
        }
    }

    /// The credit window for the link to `to`: the budget's mailbox
    /// bound on cross-component links and the engine injector,
    /// unlimited on intra-component links (a window that stalls a
    /// recursive answer its own producer transitively waits on could
    /// deadlock the cycle).
    fn link_window(&self, to: Endpoint) -> Option<u64> {
        let intra = match (self.me, to) {
            (Endpoint::Node(a), Endpoint::Node(b)) => self.intra.contains(&(a, b)),
            _ => false,
        };
        if intra {
            None
        } else {
            self.window
        }
    }

    /// True when any outgoing link holds window-stalled frames — the
    /// node's [`Ctx::pressure`] input.
    fn under_pressure(&self) -> bool {
        self.window.is_some() && self.outgoing.values().any(|s| s.stalled() > 0)
    }

    /// A logical send: counted once (retransmissions and wire duplicates
    /// never inflate the message counters), stamped when tracing, then
    /// framed — unless the link's credit window is full, in which case
    /// the frame waits in the sender's durable buffer until acks free
    /// credits.
    fn send_logical(&mut self, m: Msg) {
        self.stats.count_send(&m.payload);
        self.governor.note_messages(describe_payload(&m.payload).1);
        let n = self.n_nodes();
        let stamp = self.tracer.as_mut().map(|tr| {
            let (kind, items, wave, epoch) = describe_payload(&m.payload);
            if items > 1 {
                tr.on_flush(items);
            }
            tr.on_send(trace_actor(m.to, n), kind, items, wave, epoch)
        });
        if self.plan.is_none() {
            self.send_frame(m.to, TMsg::Plain(m, stamp));
            return;
        }
        let to = m.to;
        let now = self.now_ms();
        let window = self.link_window(to);
        let link = self.outgoing.entry(to).or_insert_with(|| SenderLink {
            window,
            ..SenderLink::default()
        });
        let seq = link.send(m.clone(), now);
        let admitted = link.admit(seq);
        if let Some(s) = stamp {
            self.out_stamps.insert((to, seq), s);
        }
        if admitted {
            self.transmit(to, seq, m, 0);
        } else {
            self.stats.credits_stalled += 1;
        }
    }

    /// Put one copy of a data frame on the wire, consulting the fault
    /// plan for its fate.
    fn transmit(&mut self, to: Endpoint, seq: u64, msg: Msg, attempt: u32) {
        let Some(plan) = &self.plan else {
            return;
        };
        let fate = plan.fate(endpoint_code(self.me), endpoint_code(to), seq, attempt);
        if fate.dropped {
            self.stats.fault_dropped += 1;
            return;
        }
        if fate.corrupted {
            self.stats.fault_corrupted += 1;
        }
        let stamp = self.out_stamps.get(&(to, seq)).cloned();
        let frame = TMsg::Data {
            seq,
            msg: msg.clone(),
            corrupted: fate.corrupted,
            stamp: stamp.clone(),
        };
        if fate.delay > 0 {
            self.stats.fault_delayed += 1;
            self.delayed.push((
                Instant::now() + Duration::from_millis(fate.delay),
                to,
                frame,
            ));
        } else {
            self.send_frame(to, frame);
        }
        if fate.duplicated {
            self.stats.fault_duplicated += 1;
            self.delayed.push((
                Instant::now() + Duration::from_millis(fate.delay + 1),
                to,
                TMsg::Data {
                    seq,
                    msg,
                    corrupted: false,
                    stamp,
                },
            ));
        }
    }

    /// Accept one data frame from `from`; returns the logical messages
    /// now deliverable in order, each paired with its causal stamp
    /// (empty for duplicates and reorder gaps).
    fn accept_data(
        &mut self,
        from: Endpoint,
        seq: u64,
        msg: Msg,
        stamp: Option<Stamp>,
    ) -> Vec<(Msg, Option<Stamp>)> {
        let (accepted, base, upto) = {
            let rl = self.incoming.entry(from).or_default();
            // Capture `next_expected` BEFORE accepting: a stale
            // duplicate (seq below it) must not park a stamp that
            // nothing will ever pop.
            let base = rl.next_expected;
            if seq >= base {
                if let Some(s) = stamp {
                    self.in_stamps.entry((from, seq)).or_insert(s);
                }
            }
            let a = rl.accept(seq, msg);
            (a, base, rl.next_expected)
        };
        match accepted {
            Accepted::Deliver(msgs) => {
                self.send_ack(from, upto);
                // In-order release: the delivered run is exactly the
                // sequence window `base..upto`.
                msgs.into_iter()
                    .enumerate()
                    .map(|(i, m)| (m, self.in_stamps.remove(&(from, base + i as u64))))
                    .collect()
            }
            Accepted::Duplicate => {
                self.stats.dups_discarded += 1;
                self.send_ack(from, upto);
                Vec::new()
            }
            Accepted::Buffered => Vec::new(),
        }
    }

    /// Send a cumulative ack back to `to`. Acks ride the same faulty
    /// wire (a lost ack is repaired by the next one — they are
    /// cumulative) but are never duplicated; a corrupt ack is just a
    /// lost ack.
    fn send_ack(&mut self, to: Endpoint, upto: u64) {
        self.ack_uid += 1;
        let uid = self.ack_uid;
        let Some(plan) = &self.plan else {
            return;
        };
        self.stats.acks += 1;
        let n = self.n_nodes();
        if let Some(tr) = self.tracer.as_mut() {
            tr.on_ack(trace_actor(to, n), upto);
        }
        let fate = plan.fate(endpoint_code(self.me), endpoint_code(to), uid, u32::MAX);
        if fate.dropped || fate.corrupted {
            self.stats.fault_dropped += 1;
            return;
        }
        let frame = TMsg::Ack {
            peer: self.me,
            upto,
        };
        if fate.delay > 0 {
            self.delayed.push((
                Instant::now() + Duration::from_millis(fate.delay),
                to,
                frame,
            ));
        } else {
            self.send_frame(to, frame);
        }
    }

    fn on_ack(&mut self, peer: Endpoint, upto: u64) {
        let released = match self.outgoing.get_mut(&peer) {
            Some(s) => {
                s.ack_upto(upto);
                // Freed credits admit stalled frames, in order.
                s.release()
            }
            None => Vec::new(),
        };
        // Acked sends can never be retransmitted; drop their stamps.
        if !self.out_stamps.is_empty() {
            self.out_stamps.retain(|&(p, s), _| p != peer || s >= upto);
        }
        for (seq, msg) in released {
            self.transmit(peer, seq, msg, 0);
        }
    }

    /// Release every delayed frame whose time has come.
    fn flush_delayed(&mut self) {
        if self.delayed.is_empty() {
            return;
        }
        let now = Instant::now();
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                let (_, to, frame) = self.delayed.swap_remove(i);
                self.send_frame(to, frame);
            } else {
                i += 1;
            }
        }
    }

    /// Retransmit unacked messages on links idle past the plan's
    /// `retransmit_after` horizon (interpreted as milliseconds here).
    fn retransmit_due(&mut self) -> Result<(), RuntimeError> {
        let (after, max_retries) = match &self.plan {
            Some(p) => (p.retransmit_after, p.max_retries),
            None => return Ok(()),
        };
        let now = self.now_ms();
        let due: Vec<Endpoint> = self
            .outgoing
            .iter()
            .filter(|(_, s)| s.due(now, after))
            .map(|(&to, _)| to)
            .collect();
        for to in due {
            let (retries, frames) = {
                let Some(s) = self.outgoing.get_mut(&to) else {
                    continue;
                };
                s.retries += 1;
                s.last_activity = now;
                // Admit whatever the window now covers, then retransmit
                // only frames that have been on the wire: stalled
                // frames beyond the window are never forced out by a
                // timer.
                let _ = s.release();
                let frames: Vec<(u64, Msg)> = s
                    .unacked
                    .range(..s.wire_hi)
                    .map(|(&q, m)| (q, m.clone()))
                    .collect();
                (s.retries, frames)
            };
            if retries > max_retries {
                return Err(RuntimeError::RetransmitExhausted {
                    from: self.me.node().unwrap_or(usize::MAX),
                    to: to.node().unwrap_or(usize::MAX),
                    retries,
                });
            }
            for (seq, msg) in frames {
                self.stats.retransmits += 1;
                self.transmit(to, seq, msg, retries);
            }
        }
        Ok(())
    }
}

/// One node's state: its process, transport endpoint, durable message
/// log, and crash/recovery bookkeeping. Behind a mutex so consecutive
/// activations on different workers hand the state off with a proper
/// synchronization edge (the scheduled bit already makes the lock
/// uncontended).
struct NodeState {
    id: usize,
    process: Process,
    /// Initial-state clone for crash recovery (fault mode only).
    pristine: Option<Process>,
    recovery: bool,
    /// This node's scheduled crash points.
    crashes: Vec<CrashPoint>,
    t: Transport,
    /// Durable log of every processed message, in processing order.
    log: Vec<Msg>,
    /// Restart generation.
    epoch: u64,
    /// Logical messages processed (budget accounting; the durable log
    /// only exists in fault mode, so this is counted separately).
    processed: u64,
    /// Reusable output buffer for `Process::handle`.
    scratch: Vec<Msg>,
    /// The node hit a fatal condition; its traffic is discarded from
    /// here on (the `Fatal` frame it sent aborts the run).
    fatal: bool,
}

impl NodeState {
    /// Handle one mailbox frame.
    fn handle_frame(&mut self, frame: TMsg, mb: &Mailbox) {
        match frame {
            TMsg::Plain(msg, stamp) => {
                if !self.process_msg(msg, stamp, mb) {
                    self.fatal = true;
                }
            }
            TMsg::Data {
                seq,
                msg,
                corrupted,
                stamp,
            } => {
                if !corrupted {
                    let from = msg.from;
                    for (m, s) in self.t.accept_data(from, seq, msg, stamp) {
                        if !self.process_msg(m, s, mb) {
                            self.fatal = true;
                            break;
                        }
                    }
                }
            }
            TMsg::Ack { peer, upto } => self.t.on_ack(peer, upto),
            // Fatal frames are addressed to the engine only.
            TMsg::Fatal(_) => {}
        }
    }

    /// Idle-time nudge: give the process its batch-flush / probe-
    /// origination chance when the mailbox has drained without a logical
    /// message (see [`Process::poke`]). Not logged: poke output is
    /// protocol state, which crash recovery deliberately rebuilds from
    /// fresh waves rather than replay.
    fn poke(&mut self, mb: &Mailbox) {
        let mailbox_empty = mb.q.lock().unwrap().is_empty();
        let pressure = self.t.under_pressure();
        let mut ctx = Ctx {
            out: &mut self.scratch,
            stats: &mut self.t.stats,
            mailbox_empty,
            pressure,
            tracer: self.t.tracer.as_mut(),
        };
        self.process.poke(&mut ctx);
        for m in self.scratch.drain(..) {
            self.t.send_logical(m);
        }
    }

    /// Handle one delivered logical message; returns `false` when the
    /// node must stop (crash with recovery disabled).
    fn process_msg(&mut self, msg: Msg, stamp: Option<Stamp>, mb: &Mailbox) -> bool {
        if self.t.plan.is_some() {
            self.log.push(msg.clone());
        }
        let n = self.t.n_nodes();
        if let Some(tr) = self.t.tracer.as_mut() {
            let (kind, items, wave, epoch) = describe_payload(&msg.payload);
            tr.on_deliver(
                trace_actor(msg.from, n),
                stamp.as_ref(),
                kind,
                items,
                wave,
                epoch,
            );
        }
        let mailbox_empty = mb.q.lock().unwrap().is_empty();
        let pressure = self.t.under_pressure();
        let mut ctx = Ctx {
            out: &mut self.scratch,
            stats: &mut self.t.stats,
            mailbox_empty,
            pressure,
            tracer: self.t.tracer.as_mut(),
        };
        self.process.handle(msg, &mut ctx);
        self.processed += 1;
        for m in self.scratch.drain(..) {
            self.t.send_logical(m);
        }
        self.maybe_crash()
    }

    /// Crash the node if its processed-message count hit a scheduled
    /// crash point, then recover it by replaying the durable log through
    /// a pristine clone (or report a fatal error, with recovery
    /// disabled). Mirrors the simulator's recovery exactly.
    fn maybe_crash(&mut self) -> bool {
        if self.crashes.is_empty() {
            return true;
        }
        let processed = self.log.len() as u64;
        if !self.crashes.iter().any(|c| c.after_processed == processed) {
            return true;
        }
        if !self.recovery {
            let _ = self
                .t
                .engine_tx
                .send(TMsg::Fatal(RuntimeError::LinkDown { node: self.id }));
            return false;
        }
        let mut fresh = match &self.pristine {
            Some(p) => p.clone(),
            None => return true,
        };
        self.t.stats.crashes += 1;
        self.epoch += 1;
        self.t.stats.epoch_bumps += 1;
        if let Some(tr) = self.t.tracer.as_mut() {
            tr.on_crash(self.epoch);
        }

        // Volatile transport state into the node is lost; the senders'
        // unacked buffers (durable, like a WAL) retransmit the contents.
        for r in self.t.incoming.values_mut() {
            r.clear_volatile();
        }

        // Rebuild computation state: pristine clone + deterministic
        // replay of the durable log. Outputs are discarded — they were
        // already sent (and sequenced durably) pre-crash. Wave probes
        // and replies are not replayed: protocol state resets at restart
        // and is rebuilt by fresh epoch-tagged waves. `SccFinished` IS
        // replayed — durable component state, not wave state. A scratch
        // stats sink keeps replayed work out of the run's counters.
        let mut scratch_stats = Stats::default();
        let mut discard: Vec<Msg> = Vec::new();
        let mut replayed: u64 = 0;
        for m in &self.log {
            let skip = matches!(
                m.payload,
                Payload::EndRequest { .. }
                    | Payload::EndNegative { .. }
                    | Payload::EndConfirmed { .. }
                    | Payload::Reborn { .. }
            );
            if skip {
                continue;
            }
            let mut ctx = Ctx {
                out: &mut discard,
                stats: &mut scratch_stats,
                // Never report an empty mailbox during replay: a leader
                // must not originate a probe wave whose messages would
                // be discarded.
                mailbox_empty: false,
                pressure: false,
                // Replayed deliveries were already recorded pre-crash;
                // recording them again would double-count.
                tracer: None,
            };
            fresh.handle(m.clone(), &mut ctx);
            discard.clear();
            replayed += 1;
        }
        self.t.stats.replayed += replayed;
        if let Some(tr) = self.t.tracer.as_mut() {
            tr.on_recover(self.epoch, replayed);
        }
        self.process = fresh;
        // Announce the rebirth (aborts any wave in flight at the BFST
        // parent) with the bumped epoch.
        let mut out: Vec<Msg> = Vec::new();
        self.process.restarted(self.epoch, &mut out);
        for m in out {
            self.t.send_logical(m);
        }
        true
    }

    /// Fault-mode transport maintenance; reports a fatal retransmission
    /// exhaustion to the engine.
    fn maintain(&mut self) {
        self.t.flush_delayed();
        if let Err(e) = self.t.retransmit_due() {
            let _ = self.t.engine_tx.send(TMsg::Fatal(e));
            self.fatal = true;
        }
    }
}

/// One pool worker: runs activations from its deque (stealing when
/// empty) and, in fault mode, ticks its assigned nodes.
struct PoolWorker {
    id: usize,
    workers: usize,
    fault_mode: bool,
    nodes: Arc<Vec<Mutex<NodeState>>>,
    net: Arc<PoolNet>,
}

impl PoolWorker {
    fn run(self) {
        let mut next_tick = Instant::now() + TICK;
        loop {
            let tick_in = if self.fault_mode {
                let now = Instant::now();
                if now >= next_tick {
                    self.tick_nodes();
                    next_tick = now + TICK;
                }
                Some(next_tick.saturating_duration_since(Instant::now()))
            } else {
                None
            };
            match self.net.next_task(self.id, tick_in) {
                Task::Stop => break,
                Task::Tick => continue,
                Task::Run(node) => self.activate(node as usize),
            }
        }
    }

    /// One activation: drain the node's mailbox (up to the budget),
    /// clear the scheduled bit, re-check. The scheduled bit guarantees
    /// no other worker is inside this node concurrently, so the state
    /// lock is uncontended.
    fn activate(&self, id: usize) {
        let mb = &self.net.mailboxes[id];
        {
            let mut st = self.nodes[id].lock().unwrap();
            st.t.hint = Some(self.id);
            // Cooperative cancellation check at the activation boundary:
            // a tripped budget quiesces the node now, without waiting
            // for the engine's cancel wave to traverse a deep mailbox.
            if self.net.governor.tripped().is_some() {
                st.process.cancel_local();
            }
            let mut handled = 0usize;
            loop {
                let Some(frame) = mb.q.lock().unwrap().pop_front() else {
                    break;
                };
                self.net.governor.note_dequeue(frame_bytes(&frame));
                // A fatal node discards its traffic (its Fatal frame is
                // already aborting the run at the engine).
                if !st.fatal {
                    st.handle_frame(frame, mb);
                }
                handled += 1;
                if self.fault_mode && !st.fatal && handled.is_multiple_of(MAINTENANCE_EVERY) {
                    st.maintain();
                }
                if handled >= ACTIVATION_BUDGET {
                    break;
                }
            }
            if self.fault_mode && !st.fatal {
                st.maintain();
            }
        }
        self.net.reschedule_if_nonempty(id, Some(self.id));
    }

    /// Fault-mode tick over this worker's assigned nodes (round-robin by
    /// id): release delayed frames, retransmit, and give the process its
    /// idle poke. Claims the scheduled bit so a tick never overlaps an
    /// activation; nodes that are active or queued are skipped — their
    /// activation runs the same maintenance.
    fn tick_nodes(&self) {
        for id in (self.id..self.nodes.len()).step_by(self.workers) {
            let mb = &self.net.mailboxes[id];
            if mb.scheduled.swap(true, Ordering::AcqRel) {
                continue;
            }
            {
                let mut st = self.nodes[id].lock().unwrap();
                if !st.fatal {
                    st.t.hint = Some(self.id);
                    st.poke(mb);
                    st.maintain();
                }
            }
            self.net.reschedule_if_nonempty(id, Some(self.id));
        }
    }
}

/// Consume one logical message at the engine endpoint. Returns `Ok(true)`
/// on the final `End`, `Ok(false)` to keep collecting, or a typed error —
/// never panics, whatever arrives.
fn engine_accept(
    msg: Msg,
    answers: &mut Relation,
    engine_ends: &mut u64,
    post_end_answers: &mut u64,
    answer_arity: usize,
) -> Result<bool, RuntimeError> {
    let mut accept_one = |tuple: mp_storage::Tuple| -> Result<(), RuntimeError> {
        if *engine_ends > 0 {
            *post_end_answers += 1;
        }
        let got = tuple.arity();
        if answers.insert(tuple).is_err() {
            return Err(RuntimeError::AnswerArity {
                expected: answer_arity,
                got,
                partial_answers: answers.len(),
            });
        }
        Ok(())
    };
    match msg.payload {
        Payload::Answer { tuple } => {
            accept_one(tuple)?;
            Ok(false)
        }
        Payload::AnswerBatch { tuples } => {
            for tuple in tuples {
                accept_one(tuple)?;
            }
            Ok(false)
        }
        Payload::End => {
            *engine_ends += 1;
            Ok(true)
        }
        Payload::EndTupleRequest { .. } | Payload::EndTupleRequestBatch { .. } => Ok(false),
        other => Err(RuntimeError::UnexpectedEngineMessage {
            kind: other.kind_name(),
        }),
    }
}

/// Result of a threaded run (same shape as the simulator's).
#[derive(Clone, Debug)]
pub struct ThreadOutcome {
    /// The answer relation.
    pub answers: Relation,
    /// Merged per-node stats plus the scheduler counters.
    pub stats: Stats,
    /// Clock-stamped event trace, if requested: the input to
    /// `mp_trace::check` and to deterministic replay in the simulator.
    pub events: Option<Trace>,
    /// `End` messages delivered to the engine before it stopped
    /// collecting (Thm 3.1 observable: must be exactly 1 on success).
    pub engine_ends: u64,
    /// Answers delivered after the final `End` and before the engine
    /// stopped collecting (Thm 3.1 observable: must be 0).
    pub post_end_answers: u64,
}

/// The threaded runtime: a worker pool with work-stealing deques.
#[derive(Clone, Debug)]
pub struct ThreadRuntime {
    /// Wall-clock budget for the whole evaluation.
    pub timeout: Duration,
    /// Fault-injection plan; `None` runs the pristine 1986 model with
    /// zero transport overhead. Delay and retransmission horizons are
    /// interpreted as milliseconds here.
    pub fault_plan: Option<FaultPlan>,
    /// Recover crashed nodes by log replay. With recovery disabled a
    /// scheduled crash aborts the run with [`RuntimeError::LinkDown`].
    pub recovery: bool,
    /// Record a clock-stamped event trace ([`ThreadOutcome::events`]).
    /// Off by default: the untraced path carries `None` stamps and
    /// skips every recording branch — zero measurable overhead (E12).
    pub trace: bool,
    /// Worker-pool size; `0` sizes it to `available_parallelism` (and
    /// never larger than the node count — nodes are the unit of
    /// parallelism).
    pub workers: usize,
    /// Resource budget: logical-message and memory high-water limits
    /// plus the per-link credit window (mailbox bound). The wall-clock
    /// deadline lives in `timeout` here (kept as its own field so the
    /// existing chaos/pool configuration keeps working).
    pub budget: QueryBudget,
    /// Cooperative cancellation handle; trip it from any thread to run
    /// a cancel drain wave and return [`RuntimeError::Cancelled`].
    pub cancel: CancelToken,
}

impl Default for ThreadRuntime {
    fn default() -> Self {
        ThreadRuntime {
            timeout: Duration::from_secs(60),
            fault_plan: None,
            recovery: true,
            trace: false,
            workers: 0,
            budget: QueryBudget::default(),
            cancel: CancelToken::default(),
        }
    }
}

impl ThreadRuntime {
    /// Run the network to completion on the worker pool.
    pub fn run(&self, network: Network) -> Result<ThreadOutcome, RuntimeError> {
        self.run_with_requests(network, std::iter::once(Tuple::unit()))
    }

    /// The effective pool size for a graph of `n` nodes.
    fn pool_size(&self, n: usize) -> usize {
        let configured = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            self.workers
        };
        configured.min(n).max(1)
    }

    /// [`ThreadRuntime::run`] with explicit top-level tuple requests.
    pub fn run_with_requests(
        &self,
        network: Network,
        requests: impl IntoIterator<Item = Tuple>,
    ) -> Result<ThreadOutcome, RuntimeError> {
        let n = network.processes.len();
        let answer_arity = network.answer_arity;
        let root = network.root;
        let fault_mode = self.fault_plan.is_some();
        let start = Instant::now();
        let workers = self.pool_size(n);

        let governor = Arc::new(Governor::new(self.budget.clone(), self.cancel.clone()));
        // Credit windows need the intra-component pairs (never windowed)
        // before the network is consumed into per-node state.
        let intra = Arc::new(network.intra_pairs());
        // Likewise the shard map, for per-instance abort accounting.
        let shard_of: Vec<usize> = network.shard_of.iter().map(|&(_, s)| s).collect();
        let window = if fault_mode {
            self.budget.mailbox_bound.map(|b| b as u64)
        } else {
            // Without a transport (no seq/ack stream) there is nothing
            // to carry credits; the bound still caps nothing here, but
            // `mailbox_high_water` is tracked either way.
            None
        };

        let net = Arc::new(PoolNet::new(n, workers, Arc::clone(&governor)));
        let (engine_tx, engine_rx) = unbounded::<TMsg>();

        // One shared lock-free ring for every actor's events; the trace
        // is collected from it after the workers stop.
        let ring: Option<Arc<Ring<Event>>> = if self.trace {
            Some(Arc::new(Ring::with_capacity(TRACE_RING_CAPACITY)))
        } else {
            None
        };
        let mk_tracer = |actor: usize| {
            ring.as_ref()
                .map(|r| Tracer::new(actor as u32, (n + 1) as u32, Arc::clone(r)))
        };

        let nodes: Arc<Vec<Mutex<NodeState>>> = Arc::new(
            network
                .processes
                .into_iter()
                .enumerate()
                .map(|(id, process)| {
                    let plan = self.fault_plan.clone();
                    let crashes: Vec<CrashPoint> = plan
                        .as_ref()
                        .map(|p| p.crashes.iter().filter(|c| c.node == id).copied().collect())
                        .unwrap_or_default();
                    let pristine = if fault_mode {
                        Some(process.clone())
                    } else {
                        None
                    };
                    Mutex::new(NodeState {
                        id,
                        process,
                        pristine,
                        recovery: self.recovery,
                        crashes,
                        t: Transport::new(
                            Endpoint::Node(id),
                            plan,
                            start,
                            Arc::clone(&net),
                            engine_tx.clone(),
                            mk_tracer(id),
                            window,
                            Arc::clone(&intra),
                        ),
                        log: Vec::new(),
                        epoch: 0,
                        processed: 0,
                        scratch: Vec::new(),
                        fatal: false,
                    })
                })
                .collect(),
        );

        // Spawn the pool. Each worker signals `done_tx` on exit — the
        // condvar/channel join below replaces any sleep-polling.
        let (done_tx, done_rx) = unbounded::<usize>();
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let worker = PoolWorker {
                id: w,
                workers,
                fault_mode,
                nodes: Arc::clone(&nodes),
                net: Arc::clone(&net),
            };
            let tx = done_tx.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("mp-worker-{w}"))
                .spawn(move || {
                    worker.run();
                    let _ = tx.send(w);
                });
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    net.shutdown();
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(RuntimeError::WorkerSpawn {
                        node: w,
                        reason: e.to_string(),
                    });
                }
            }
        }

        // The engine's own transport endpoint: injects the query and,
        // in fault mode, acks/retransmits on the links to and from the
        // root node.
        let mut t = Transport::new(
            Endpoint::Engine,
            self.fault_plan.clone(),
            start,
            Arc::clone(&net),
            engine_tx.clone(),
            mk_tracer(n),
            window,
            Arc::clone(&intra),
        );
        let to_root = Endpoint::Node(root);
        t.send_logical(Msg {
            from: Endpoint::Engine,
            to: to_root,
            payload: Payload::RelationRequest,
        });
        for b in requests {
            t.send_logical(Msg {
                from: Endpoint::Engine,
                to: to_root,
                payload: Payload::TupleRequest { binding: b },
            });
        }
        t.send_logical(Msg {
            from: Endpoint::Engine,
            to: to_root,
            payload: Payload::EndOfRequests,
        });

        // Collect until the final End (or timeout / budget trip).
        let deadline = start + self.timeout;
        let mut answers = Relation::new(answer_arity);
        let mut engine_ends: u64 = 0;
        let mut post_end_answers: u64 = 0;
        let mut tripped: Option<Trip> = None;
        let mut result: Result<(), RuntimeError> = loop {
            let now = Instant::now();
            if now >= deadline {
                break Err(self.timeout_error(start, &answers, &net));
            }
            governor.sample_arena();
            if tripped.is_none() {
                if let Some(tr) = governor.tripped() {
                    // First trip: run one cancel drain wave. Nodes stop
                    // deriving, forward the wave down the spanning tree,
                    // and keep acking frames; the loop then waits for
                    // the mailboxes to drain instead of for `End`.
                    tripped = Some(tr);
                    t.stats.cancel_waves += 1;
                    for id in 0..n {
                        t.send_logical(Msg {
                            from: Endpoint::Engine,
                            to: Endpoint::Node(id),
                            payload: Payload::Cancel { wave: 1, epoch: 0 },
                        });
                    }
                }
            }
            let wait = if fault_mode || tripped.is_some() {
                TICK.min(deadline - now)
            } else {
                // Short poll so an explicit cancel (or a byte budget
                // crossed by node-side allocation) is noticed promptly
                // even while the engine sits idle between answers.
                Duration::from_millis(25).min(deadline - now)
            };
            match engine_rx.recv_timeout(wait) {
                Ok(frame) => {
                    let msgs: Vec<(Msg, Option<Stamp>)> = match frame {
                        TMsg::Plain(m, s) => vec![(m, s)],
                        TMsg::Data {
                            seq,
                            msg,
                            corrupted,
                            stamp,
                        } => {
                            if corrupted {
                                Vec::new()
                            } else {
                                let from = msg.from;
                                t.accept_data(from, seq, msg, stamp)
                            }
                        }
                        TMsg::Ack { peer, upto } => {
                            t.on_ack(peer, upto);
                            Vec::new()
                        }
                        TMsg::Fatal(e) => break Err(e),
                    };
                    let mut flow: Result<bool, RuntimeError> = Ok(false);
                    for (m, s) in msgs {
                        if let Some(tr) = t.tracer.as_mut() {
                            let (kind, items, wave, epoch) = describe_payload(&m.payload);
                            tr.on_deliver(
                                trace_actor(m.from, n),
                                s.as_ref(),
                                kind,
                                items,
                                wave,
                                epoch,
                            );
                            if matches!(m.payload, Payload::End) {
                                tr.on_end();
                            }
                        }
                        flow = engine_accept(
                            m,
                            &mut answers,
                            &mut engine_ends,
                            &mut post_end_answers,
                            answer_arity,
                        );
                        if !matches!(flow, Ok(false)) {
                            break;
                        }
                    }
                    match flow {
                        Ok(true) => break Ok(()),
                        Err(e) => break Err(e),
                        Ok(false) => {}
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    if tripped.is_some() && net.pending().is_empty() {
                        break Ok(());
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break Err(RuntimeError::NoTermination),
            }
            if fault_mode {
                t.flush_delayed();
                if let Err(e) = t.retransmit_due() {
                    break Err(e);
                }
            }
        };

        // Shut the pool down: signal, then block on the workers' done
        // channel with a bounded grace period — a stuck worker is
        // detached and reported instead of hanging the caller past its
        // own deadline (and instead of a sleep-polling loop).
        net.shutdown();
        let grace_deadline = Instant::now() + SHUTDOWN_GRACE;
        let mut done = vec![false; workers];
        let mut done_count = 0usize;
        while done_count < workers {
            let now = Instant::now();
            if now >= grace_deadline {
                break;
            }
            match done_rx.recv_timeout(grace_deadline - now) {
                Ok(w) => {
                    if !done[w] {
                        done[w] = true;
                        done_count += 1;
                    }
                }
                Err(_) => break,
            }
        }
        let mut unjoined: Vec<usize> = Vec::new();
        for (w, h) in handles.into_iter().enumerate() {
            if done[w] {
                let _ = h.join();
            } else {
                // Dropping the handle detaches the stuck worker.
                unjoined.push(w);
                drop(h);
            }
        }

        // Fold the per-node and scheduler counters into the engine's.
        // `try_lock`: a detached worker may still hold one node's state;
        // its counters are lost, exactly as a stuck thread's were.
        let mut stats = t.stats;
        for node in nodes.iter() {
            if let Ok(st) = node.try_lock() {
                stats.merge(&st.t.stats);
            }
        }
        net.merge_sched_stats(&mut stats);
        governor.sample_arena();
        stats.mem_high_water_bytes = stats.mem_high_water_bytes.max(governor.mem_high_water());

        if let Err(RuntimeError::Timeout { unjoined: u, .. }) = &mut result {
            *u = unjoined;
        }
        // A tripped run surfaces the typed governance error, whatever
        // the drain ended with (a final `End` racing the wave, a clean
        // quiescence, or a deadline crossed mid-drain); genuine fatal
        // errors from the drain still win.
        if let Some(tr) = tripped {
            if matches!(result, Ok(()) | Err(RuntimeError::Timeout { .. })) {
                let accounting: Vec<NodeUsage> = (0..n)
                    .map(|id| {
                        let processed = nodes[id]
                            .try_lock()
                            .map(|st| st.processed)
                            .unwrap_or_default();
                        let q = net.mailboxes[id].q.lock().unwrap();
                        NodeUsage {
                            node: id,
                            shard: shard_of.get(id).copied().unwrap_or(0),
                            messages_processed: processed,
                            mailbox_depth: q.len(),
                            mem_bytes: q.iter().map(frame_bytes).sum(),
                        }
                    })
                    .collect();
                result = Err(budget_error(
                    tr,
                    &governor,
                    answers.iter().cloned().collect(),
                    accounting,
                    stats.cancel_waves,
                ));
            }
        }
        let events = ring.map(|r| mp_trace::collect((n + 1) as u32, &r));
        result.map(|()| ThreadOutcome {
            answers,
            stats,
            events,
            engine_ends,
            post_end_answers,
        })
    }

    /// Build the diagnostic timeout error from abort-time state; the
    /// `unjoined` list (worker ids) is filled in after the shutdown
    /// drain.
    fn timeout_error(&self, start: Instant, answers: &Relation, net: &PoolNet) -> RuntimeError {
        RuntimeError::Timeout {
            budget_millis: self.timeout.as_millis() as u64,
            elapsed_millis: start.elapsed().as_millis() as u64,
            partial_answers: answers.len(),
            pending: net.pending(),
            unjoined: Vec::new(),
        }
    }
}
