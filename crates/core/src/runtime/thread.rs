//! The threaded runtime: one OS thread per node over crossbeam channels.
//!
//! This realizes the paper's deployment claim directly: "No shared memory
//! is required … this formulation is amenable to parallel computation"
//! (§1.2). Each node owns its temporary relations; the only communication
//! is message passing. Channel sends are atomic enqueues, so the Fig 2
//! protocol's `empty_queues()` check (`Receiver::is_empty`) retains the
//! semantics it has in the simulator; the Mattern-style counters carried
//! on confirm waves add a defence-in-depth consistency check.

use crate::msg::{Endpoint, Msg, Payload};
use crate::node::{Ctx, Network};
use crate::runtime::RuntimeError;
use crate::stats::Stats;
use crossbeam_channel::{unbounded, Receiver, Sender};
use mp_storage::{Relation, Tuple};
use std::time::{Duration, Instant};

/// Result of a threaded run (same shape as the simulator's, no trace).
#[derive(Clone, Debug)]
pub struct ThreadOutcome {
    /// The answer relation.
    pub answers: Relation,
    /// Merged per-node stats.
    pub stats: Stats,
}

/// The threaded runtime.
#[derive(Clone, Debug)]
pub struct ThreadRuntime {
    /// Wall-clock budget for the whole evaluation.
    pub timeout: Duration,
}

impl Default for ThreadRuntime {
    fn default() -> Self {
        ThreadRuntime {
            timeout: Duration::from_secs(60),
        }
    }
}

impl ThreadRuntime {
    /// Run the network to completion on one thread per node.
    pub fn run(&self, network: Network) -> Result<ThreadOutcome, RuntimeError> {
        self.run_with_requests(network, std::iter::once(Tuple::unit()))
    }

    /// [`ThreadRuntime::run`] with explicit top-level tuple requests.
    pub fn run_with_requests(
        &self,
        network: Network,
        requests: impl IntoIterator<Item = Tuple>,
    ) -> Result<ThreadOutcome, RuntimeError> {
        let n = network.processes.len();
        let answer_arity = network.answer_arity;
        let root = network.root;
        let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(n);
        let mut receivers: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(Some(rx));
        }
        let (engine_tx, engine_rx) = unbounded::<Msg>();

        let mut handles = Vec::with_capacity(n);
        for (id, mut process) in network.processes.into_iter().enumerate() {
            let rx = receivers[id].take().expect("receiver unclaimed");
            let senders = senders.clone();
            let engine_tx = engine_tx.clone();
            handles.push(std::thread::spawn(move || -> Stats {
                let mut stats = Stats::default();
                let mut out: Vec<Msg> = Vec::new();
                while let Ok(msg) = rx.recv() {
                    if msg.payload == Payload::Shutdown {
                        break;
                    }
                    let mut ctx = Ctx {
                        out: &mut out,
                        stats: &mut stats,
                        mailbox_empty: rx.is_empty(),
                    };
                    process.handle(msg, &mut ctx);
                    for m in out.drain(..) {
                        stats.count_send(&m.payload);
                        match m.to {
                            Endpoint::Engine => {
                                let _ = engine_tx.send(m);
                            }
                            Endpoint::Node(t) => {
                                let _ = senders[t].send(m);
                            }
                        }
                    }
                }
                stats
            }));
        }

        // Inject the query.
        let mut engine_stats = Stats::default();
        let inject = |payload: Payload, engine_stats: &mut Stats| {
            engine_stats.count_send(&payload);
            senders[root]
                .send(Msg {
                    from: Endpoint::Engine,
                    to: Endpoint::Node(root),
                    payload,
                })
                .expect("root thread alive");
        };
        inject(Payload::RelationRequest, &mut engine_stats);
        for b in requests {
            inject(Payload::TupleRequest { binding: b }, &mut engine_stats);
        }
        inject(Payload::EndOfRequests, &mut engine_stats);

        // Collect until the final End (or timeout).
        let deadline = Instant::now() + self.timeout;
        let mut answers = Relation::new(answer_arity);
        let result = loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break Err(RuntimeError::Timeout {
                    millis: self.timeout.as_millis() as u64,
                });
            }
            match engine_rx.recv_timeout(remaining) {
                Ok(msg) => match msg.payload {
                    Payload::Answer { tuple } => {
                        answers.insert(tuple).expect("goal arity");
                    }
                    Payload::End => break Ok(()),
                    Payload::EndTupleRequest { .. } => {}
                    other => unreachable!("unexpected message to engine: {other:?}"),
                },
                Err(_) => {
                    break Err(RuntimeError::Timeout {
                        millis: self.timeout.as_millis() as u64,
                    })
                }
            }
        };

        // Shut everything down and merge stats.
        for tx in &senders {
            let _ = tx.send(Msg {
                from: Endpoint::Engine,
                to: Endpoint::Engine, // routing field unused by Shutdown
                payload: Payload::Shutdown,
            });
        }
        let mut stats = engine_stats;
        for h in handles {
            if let Ok(s) = h.join() {
                stats.merge(&s);
            }
        }
        result.map(|()| ThreadOutcome { answers, stats })
    }
}
