//! Resource governance: query budgets, cooperative cancellation, and
//! the shared accounting both runtimes consult.
//!
//! A [`QueryBudget`] bundles every per-query resource limit — the step
//! budget and wall-clock deadline that used to live directly on the
//! engine, plus a logical-message budget, a memory high-water budget
//! (interned-arena + mailbox bytes), and a per-link mailbox bound that
//! drives the credit-based send window on the recovery transport.
//!
//! A [`Governor`] is built per evaluation from the budget and the
//! engine's [`CancelToken`]. Both runtimes feed it logical-message and
//! mailbox-byte counts from their hot paths (relaxed atomics; the sim is
//! single-threaded, the pool already synchronizes through its scheduler
//! mutex) and poll [`Governor::tripped`] at activation boundaries. The
//! first trip is sticky, so the reported reason is stable even when two
//! limits are crossed in the same activation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default step budget (divergence guard) — the historical
/// `Engine::with_max_steps` default.
pub const DEFAULT_MAX_STEPS: u64 = 200_000_000;

/// Default wall-clock deadline — the historical `Engine::with_timeout`
/// default.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(60);

/// Per-query resource limits. `Default` reproduces the pre-governance
/// engine exactly: generous step/deadline guards, no message, memory, or
/// mailbox limits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryBudget {
    /// Delivery-step budget (divergence guard; sim runtime). Exceeding
    /// it raises [`crate::runtime::RuntimeError::Diverged`], as
    /// `with_max_steps` always has.
    pub max_steps: u64,
    /// Wall-clock deadline. Exceeding it raises
    /// [`crate::runtime::RuntimeError::Timeout`], as `with_timeout`
    /// always has.
    pub deadline: Duration,
    /// Logical-message budget: batching-invariant logical items sent
    /// (what [`crate::stats::Stats::logical_messages`] counts), so a
    /// budget behaves identically at every batch size. Exceeding it
    /// starts a cancel wave and raises
    /// [`crate::runtime::RuntimeError::BudgetExceeded`].
    pub max_messages: Option<u64>,
    /// Memory high-water budget in bytes: the interned-symbol arena plus
    /// all queued mailbox payloads (see [`crate::msg::Payload::approx_bytes`]).
    /// Exceeding it starts a cancel wave.
    pub max_bytes: Option<u64>,
    /// Per-link frame bound: caps transmitted-but-unacked frames on
    /// every non-recursive link of the recovery transport (the credit
    /// window), so a slow consumer throttles its producers instead of
    /// accumulating frames. Requires a fault plan (the window rides the
    /// seq/ack stream); ignored on the bare in-memory paths.
    pub mailbox_bound: Option<usize>,
}

impl Default for QueryBudget {
    fn default() -> Self {
        QueryBudget {
            max_steps: DEFAULT_MAX_STEPS,
            deadline: DEFAULT_DEADLINE,
            max_messages: None,
            max_bytes: None,
            mailbox_bound: None,
        }
    }
}

impl QueryBudget {
    /// The default budget (divergence guards only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the delivery-step budget.
    pub fn with_max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }

    /// Set the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Set the logical-message budget.
    pub fn with_max_messages(mut self, messages: u64) -> Self {
        self.max_messages = Some(messages);
        self
    }

    /// Set the memory high-water budget in bytes.
    pub fn with_max_bytes(mut self, bytes: u64) -> Self {
        self.max_bytes = Some(bytes);
        self
    }

    /// Set the per-link credit window (frames in flight per link).
    pub fn with_mailbox_bound(mut self, frames: usize) -> Self {
        self.mailbox_bound = Some(frames);
        self
    }
}

/// A shared cancellation handle. Cloning is cheap; any clone's
/// [`CancelToken::cancel`] is observed by the evaluation it was taken
/// from (via [`crate::engine::Engine::cancel_token`]) at its next
/// activation boundary, which then runs a cancel drain wave and returns
/// [`crate::runtime::RuntimeError::Cancelled`] with partial answers.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Which limit a tripped evaluation crossed first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trip {
    /// Explicit [`CancelToken::cancel`].
    Cancelled,
    /// The logical-message budget.
    Messages,
    /// The memory high-water budget.
    Bytes,
}

/// Per-node resource accounting snapshot, carried by the typed budget
/// and cancellation errors so an aborted query explains where the work
/// went (the PR 3 `Timeout` diagnostics, extended).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeUsage {
    /// The node (physical process id — one row per shard instance when
    /// evaluation runs sharded).
    pub node: usize,
    /// Which shard instance of the logical node this row accounts for
    /// (always 0 at `--shards 1` and for single-instance nodes).
    pub shard: usize,
    /// Messages this node processed before the abort.
    pub messages_processed: u64,
    /// The node's mailbox depth at abort.
    pub mailbox_depth: usize,
    /// Approximate bytes queued in the node's mailbox at abort.
    pub mem_bytes: u64,
}

/// Shared per-evaluation governor: the budget, the cancel token, and the
/// running message/byte accounting. Trip state is sticky.
#[derive(Debug)]
pub struct Governor {
    budget: QueryBudget,
    cancel: CancelToken,
    /// Logical messages sent so far.
    messages: AtomicU64,
    /// Bytes currently queued across all mailboxes.
    mailbox_bytes: AtomicU64,
    /// Interned-arena bytes, sampled at maintenance points (reading the
    /// interner takes a lock, so it is not consulted per message).
    arena_bytes: AtomicU64,
    /// High-water mark of `arena_bytes + mailbox_bytes`.
    mem_high_water: AtomicU64,
    /// 0 = not tripped; otherwise 1 + discriminant of the first trip.
    trip: AtomicU64,
}

impl Governor {
    /// Build a governor for one evaluation.
    pub fn new(budget: QueryBudget, cancel: CancelToken) -> Self {
        let g = Governor {
            budget,
            cancel,
            messages: AtomicU64::new(0),
            mailbox_bytes: AtomicU64::new(0),
            arena_bytes: AtomicU64::new(0),
            mem_high_water: AtomicU64::new(0),
            trip: AtomicU64::new(0),
        };
        g.sample_arena();
        g
    }

    /// The budget this governor enforces.
    pub fn budget(&self) -> &QueryBudget {
        &self.budget
    }

    fn set_trip(&self, t: Trip) {
        let code = 1 + t as u64;
        // First trip wins; later trips keep the original reason.
        let _ = self
            .trip
            .compare_exchange(0, code, Ordering::AcqRel, Ordering::Acquire);
    }

    /// The sticky trip state, checking the cancel token first so an
    /// explicit cancel is observed even between accounting updates.
    pub fn tripped(&self) -> Option<Trip> {
        match self.trip.load(Ordering::Acquire) {
            0 => {
                if self.cancel.is_cancelled() {
                    self.set_trip(Trip::Cancelled);
                    self.tripped()
                } else {
                    None
                }
            }
            1 => Some(Trip::Cancelled),
            2 => Some(Trip::Messages),
            _ => Some(Trip::Bytes),
        }
    }

    /// Record `items` logical messages sent.
    pub fn note_messages(&self, items: u64) {
        let total = self.messages.fetch_add(items, Ordering::Relaxed) + items;
        if let Some(limit) = self.budget.max_messages {
            if total > limit {
                self.set_trip(Trip::Messages);
            }
        }
    }

    /// Logical messages sent so far.
    pub fn messages_used(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Record `bytes` entering a mailbox.
    pub fn note_enqueue(&self, bytes: u64) {
        let q = self.mailbox_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.update_high_water(q);
    }

    /// Record `bytes` leaving a mailbox.
    pub fn note_dequeue(&self, bytes: u64) {
        self.mailbox_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Re-read the interner arena size (lock-taking; call at maintenance
    /// points, not per message).
    pub fn sample_arena(&self) {
        let arena = mp_storage::symbol_bytes() as u64;
        self.arena_bytes.store(arena, Ordering::Relaxed);
        self.update_high_water(self.mailbox_bytes.load(Ordering::Relaxed));
    }

    fn update_high_water(&self, mailbox_now: u64) {
        let now = self.arena_bytes.load(Ordering::Relaxed) + mailbox_now;
        self.mem_high_water.fetch_max(now, Ordering::Relaxed);
        if let Some(limit) = self.budget.max_bytes {
            if now > limit {
                self.set_trip(Trip::Bytes);
            }
        }
    }

    /// Memory high-water mark observed so far (arena + mailboxes).
    pub fn mem_high_water(&self) -> u64 {
        self.mem_high_water.load(Ordering::Relaxed)
    }

    /// The limit/used pair for a trip's error report.
    pub fn trip_report(&self, t: Trip) -> (u64, u64) {
        match t {
            Trip::Cancelled => (0, 0),
            Trip::Messages => (self.budget.max_messages.unwrap_or(0), self.messages_used()),
            Trip::Bytes => (self.budget.max_bytes.unwrap_or(0), self.mem_high_water()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_matches_historical_guards() {
        let b = QueryBudget::default();
        assert_eq!(b.max_steps, DEFAULT_MAX_STEPS);
        assert_eq!(b.deadline, DEFAULT_DEADLINE);
        assert_eq!(b.max_messages, None);
        assert_eq!(b.max_bytes, None);
        assert_eq!(b.mailbox_bound, None);
    }

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn message_budget_trips_once_and_is_sticky() {
        let g = Governor::new(
            QueryBudget::default().with_max_messages(10),
            CancelToken::new(),
        );
        g.note_messages(10);
        assert_eq!(g.tripped(), None);
        g.note_messages(1);
        assert_eq!(g.tripped(), Some(Trip::Messages));
        // A later byte-limit crossing does not change the reason.
        g.note_enqueue(u64::MAX / 2);
        assert_eq!(g.tripped(), Some(Trip::Messages));
        let (limit, used) = g.trip_report(Trip::Messages);
        assert_eq!(limit, 10);
        assert_eq!(used, 11);
    }

    #[test]
    fn byte_budget_tracks_high_water() {
        let g = Governor::new(
            QueryBudget::default().with_max_bytes(1 << 30),
            CancelToken::new(),
        );
        let arena = g.arena_bytes.load(Ordering::Relaxed);
        g.note_enqueue(1000);
        g.note_dequeue(1000);
        g.note_enqueue(10);
        assert_eq!(g.mem_high_water(), arena + 1000);
        assert_eq!(g.tripped(), None);
    }

    #[test]
    fn cancel_trips_via_token() {
        let cancel = CancelToken::new();
        let g = Governor::new(QueryBudget::default(), cancel.clone());
        assert_eq!(g.tripped(), None);
        cancel.cancel();
        assert_eq!(g.tripped(), Some(Trip::Cancelled));
    }
}
