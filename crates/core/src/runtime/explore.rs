//! Bounded exhaustive exploration of message delivery schedules.
//!
//! Thm 3.1 claims the termination protocol declares completion exactly
//! when the computation is done — under any *fair* delivery order (every
//! sent message is eventually delivered; per-node mailboxes stay FIFO).
//! [`SimRuntime`](crate::runtime::SimRuntime)'s seeded random schedule
//! samples that space; this module *enumerates* a principled slice of it
//! by delay-bounded systematic exploration: every schedule reachable from
//! the global-FIFO baseline by at most [`ExploreConfig::delay_budget`]
//! out-of-order deliveries, forking the entire network state at each
//! choice point.
//!
//! Delay bounding is what makes exhaustive search sound here. Branching
//! over *arbitrary* nonempty mailboxes explores unfair schedules — e.g.
//! one that services an endlessly re-probing strong component while a
//! work message starves forever in another node's mailbox — and those
//! livelocks are excluded by the theorem's fairness hypothesis, not
//! violations of it. With a delay budget, every explored path eventually
//! degenerates to pure FIFO and therefore terminates; within the budget,
//! all reorderings (respecting per-node FIFO) are covered.
//!
//! At every quiescent state the explorer asserts the theorem's
//! observable consequences:
//!
//! 1. **termination** — the engine received `End` (no quiescent state
//!    without a completion declaration);
//! 2. **confluence** — the answer set equals the reference schedule's
//!    (delivery order never changes the computed relation);
//! 3. **no late answers** — no `Answer` reaches the engine after `End`
//!    (completion is never declared prematurely).
//!
//! The search is additionally bounded by transition/execution caps;
//! hitting any bound sets [`ExploreReport::truncated`] rather than
//! failing. Intended for the small programs in tests, not benchmarks.

use crate::msg::{Endpoint, Msg, Payload};
use crate::node::{Ctx, Network};
use crate::stats::Stats;
use mp_storage::{Relation, Tuple};
use std::collections::VecDeque;

/// Search bounds for [`explore`].
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// Out-of-order deliveries allowed per execution. 0 explores exactly
    /// the global-FIFO schedule; each unit lets one younger message
    /// overtake the queue head once.
    pub delay_budget: u32,
    /// How far into the global queue an overtaking delivery may reach.
    pub window: usize,
    /// Cap on message deliveries across the whole search.
    pub max_transitions: u64,
    /// Cap on completed executions (quiescent states reached).
    pub max_executions: u64,
    /// Per-execution step guard against divergence bugs.
    pub max_depth: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            delay_budget: 3,
            window: 4,
            max_transitions: 500_000,
            max_executions: 50_000,
            max_depth: 100_000,
        }
    }
}

/// What the exploration covered.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Quiescent states reached (distinct complete executions).
    pub executions: u64,
    /// Message deliveries performed across all branches.
    pub transitions: u64,
    /// True when a bound in [`ExploreConfig`] cut the search short; the
    /// invariants still held on everything explored.
    pub truncated: bool,
    /// The answer set every explored execution agreed on.
    pub answers: Vec<Tuple>,
}

/// A Thm 3.1 violation witnessed on a concrete schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// A quiescent state was reached without the engine seeing `End`.
    NoTermination {
        /// The queue positions chosen at each step on the failing path.
        schedule: Vec<usize>,
    },
    /// Two schedules computed different answer sets.
    AnswerMismatch {
        /// The choice sequence that diverged.
        schedule: Vec<usize>,
        /// Answers on the reference (first explored) schedule.
        expected: Vec<Tuple>,
        /// Answers on this schedule.
        got: Vec<Tuple>,
    },
    /// An answer reached the engine after `End` — completion was declared
    /// prematurely.
    AnswerAfterEnd {
        /// The choice sequence that exposed it.
        schedule: Vec<usize>,
    },
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleViolation::NoTermination { schedule } => {
                write!(f, "quiescent without End after choices {schedule:?}")
            }
            ScheduleViolation::AnswerMismatch {
                schedule,
                expected,
                got,
            } => write!(
                f,
                "schedule {schedule:?} computed {got:?}, expected {expected:?}"
            ),
            ScheduleViolation::AnswerAfterEnd { schedule } => {
                write!(f, "answer after End on schedule {schedule:?}")
            }
        }
    }
}

impl std::error::Error for ScheduleViolation {}

/// One branch point of the search: a full fork of the network plus the
/// undelivered messages (global send order) and engine-side observations.
#[derive(Clone)]
struct State {
    network: Network,
    /// Undelivered messages in send order. Delivering index 0 is the
    /// FIFO baseline; any other index spends delay budget.
    queue: VecDeque<Msg>,
    answers: Relation,
    end_seen: bool,
    delays_left: u32,
    /// Queue positions chosen so far (for violation reports).
    schedule: Vec<usize>,
}

impl State {
    /// Queue positions deliverable next: within the window, at most one
    /// per destination node (per-node FIFO — a message may not overtake
    /// an older one bound for the same mailbox), and only position 0 once
    /// the delay budget is spent.
    fn candidates(&self, window: usize) -> Vec<usize> {
        if self.queue.is_empty() {
            return Vec::new();
        }
        if self.delays_left == 0 {
            return vec![0];
        }
        let mut seen_nodes = Vec::new();
        let mut out = Vec::new();
        for (i, m) in self.queue.iter().take(window).enumerate() {
            match m.to {
                Endpoint::Engine => {
                    // Engine deliveries are observations, not activations;
                    // reordering them never changes node behavior.
                    if i == 0 {
                        out.push(0);
                    }
                }
                Endpoint::Node(id) => {
                    if !seen_nodes.contains(&id) {
                        seen_nodes.push(id);
                        out.push(i);
                    }
                }
            }
        }
        if out.is_empty() {
            out.push(0);
        }
        out
    }

    /// Deliver the message at queue position `pos`, observing engine-side
    /// events and enqueuing any output.
    fn deliver(
        &mut self,
        pos: usize,
        stats: &mut Stats,
        out: &mut Vec<Msg>,
    ) -> Result<(), ScheduleViolation> {
        let msg = self.queue.remove(pos).expect("candidate position exists");
        self.schedule.push(pos);
        match msg.to {
            Endpoint::Engine => match msg.payload {
                Payload::Answer { tuple } => {
                    if self.end_seen {
                        return Err(ScheduleViolation::AnswerAfterEnd {
                            schedule: self.schedule.clone(),
                        });
                    }
                    self.answers
                        .insert(tuple)
                        .expect("answers match the goal arity");
                }
                Payload::AnswerBatch { tuples } => {
                    if self.end_seen {
                        return Err(ScheduleViolation::AnswerAfterEnd {
                            schedule: self.schedule.clone(),
                        });
                    }
                    for tuple in tuples {
                        self.answers
                            .insert(tuple)
                            .expect("answers match the goal arity");
                    }
                }
                Payload::End => self.end_seen = true,
                Payload::EndTupleRequest { .. } | Payload::EndTupleRequestBatch { .. } => {}
                other => unreachable!("unexpected message to engine: {other:?}"),
            },
            Endpoint::Node(id) => {
                let mailbox_empty = !self.queue.iter().any(|m| m.to == Endpoint::Node(id));
                let mut ctx = Ctx {
                    out,
                    stats,
                    mailbox_empty,
                    pressure: false,
                    tracer: None,
                };
                self.network.processes[id].handle(msg, &mut ctx);
                self.queue.extend(out.drain(..));
            }
        }
        Ok(())
    }
}

/// Exhaustively explore delay-bounded delivery schedules of `network`
/// for the standard top-level query (one unit tuple request), checking
/// the Thm 3.1 invariants at every quiescent state.
pub fn explore(
    network: &Network,
    config: ExploreConfig,
) -> Result<ExploreReport, ScheduleViolation> {
    explore_with_requests(network, std::iter::once(Tuple::unit()), config)
}

/// [`explore`] with explicit top-level tuple requests.
pub fn explore_with_requests(
    network: &Network,
    requests: impl IntoIterator<Item = Tuple>,
    config: ExploreConfig,
) -> Result<ExploreReport, ScheduleViolation> {
    let root = Endpoint::Node(network.root);
    let mut queue = VecDeque::new();
    queue.push_back(Msg {
        from: Endpoint::Engine,
        to: root,
        payload: Payload::RelationRequest,
    });
    for b in requests {
        queue.push_back(Msg {
            from: Endpoint::Engine,
            to: root,
            payload: Payload::TupleRequest { binding: b },
        });
    }
    queue.push_back(Msg {
        from: Endpoint::Engine,
        to: root,
        payload: Payload::EndOfRequests,
    });
    let root_state = State {
        network: network.clone(),
        queue,
        answers: Relation::new(network.answer_arity),
        end_seen: false,
        delays_left: config.delay_budget,
        schedule: Vec::new(),
    };

    let mut report = ExploreReport {
        executions: 0,
        transitions: 0,
        truncated: false,
        answers: Vec::new(),
    };
    let mut reference: Option<Vec<Tuple>> = None;
    // Stats are per-delivery instrumentation; behavior never reads them,
    // so one scratch sink serves every branch.
    let mut stats = Stats::default();
    let mut out: Vec<Msg> = Vec::new();

    // Depth-first with successors generated lazily: each frame holds one
    // forked state and a cursor into its candidate list, so live memory
    // is O(path length), not O(explored states).
    struct Frame {
        state: State,
        candidates: Vec<usize>,
        next: usize,
    }
    let root_candidates = root_state.candidates(config.window);
    let mut stack = vec![Frame {
        state: root_state,
        candidates: root_candidates,
        next: 0,
    }];

    'search: while let Some(frame) = stack.last_mut() {
        let Some(&pos) = frame.candidates.get(frame.next) else {
            stack.pop();
            continue;
        };
        frame.next += 1;

        if report.transitions >= config.max_transitions {
            report.truncated = true;
            break;
        }
        report.transitions += 1;

        let mut next = frame.state.clone();
        if pos > 0 {
            next.delays_left -= 1;
        }
        next.deliver(pos, &mut stats, &mut out)?;

        if next.queue.is_empty() {
            // Quiescent: Thm 3.1's observables must hold.
            if !next.end_seen {
                return Err(ScheduleViolation::NoTermination {
                    schedule: next.schedule,
                });
            }
            let answers = next.answers.sorted_rows();
            match &reference {
                None => {
                    report.answers = answers.clone();
                    reference = Some(answers);
                }
                Some(expected) if *expected != answers => {
                    return Err(ScheduleViolation::AnswerMismatch {
                        schedule: next.schedule,
                        expected: expected.clone(),
                        got: answers,
                    });
                }
                Some(_) => {}
            }
            report.executions += 1;
            if report.executions >= config.max_executions {
                report.truncated = true;
                break 'search;
            }
            continue;
        }

        if next.schedule.len() as u64 >= config.max_depth {
            report.truncated = true;
            continue;
        }
        let candidates = next.candidates(config.window);
        stack.push(Frame {
            state: next,
            candidates,
            next: 0,
        });
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use mp_datalog::parser::parse_program;
    use mp_datalog::Database;
    use mp_storage::tuple;

    fn network_for(src: &str, edges: &[(i64, i64)]) -> Network {
        let program = parse_program(src).unwrap();
        let mut db = Database::new();
        for &(a, b) in edges {
            db.insert("edge", tuple![a, b]).unwrap();
        }
        let engine = Engine::new(program, db);
        let compiled = engine.compile().unwrap();
        Network::compile(&compiled.graph, engine.database())
    }

    #[test]
    fn edb_query_exhaustively_explored() {
        // The smallest network (goal + rule + EDB leaf): the whole
        // delay-bounded space fits comfortably inside the default bounds.
        let network = network_for("g(Z) :- edge(1, Z). ?- g(Z).", &[(1, 2), (1, 3)]);
        let report = explore(&network, ExploreConfig::default()).unwrap();
        assert!(!report.truncated, "space should be exhaustible");
        assert!(report.executions >= 1);
        assert_eq!(report.answers, vec![tuple![2], tuple![3]]);
    }

    #[test]
    fn zero_budget_is_exactly_fifo() {
        let network = network_for("g(Z) :- edge(1, Z). ?- g(Z).", &[(1, 2)]);
        let config = ExploreConfig {
            delay_budget: 0,
            ..ExploreConfig::default()
        };
        let report = explore(&network, config).unwrap();
        assert_eq!(report.executions, 1, "FIFO is a single schedule");
        assert!(!report.truncated);
        assert_eq!(report.answers, vec![tuple![2]]);
    }

    #[test]
    fn nonrecursive_join_all_schedules() {
        let network = network_for(
            "g(X, Z) :- edge(X, Y), edge(Y, Z).
             ?- g(1, Z).",
            &[(1, 2), (2, 3), (2, 4)],
        );
        let report = explore(&network, ExploreConfig::default()).unwrap();
        assert!(report.executions > 1, "must reach many interleavings");
        assert_eq!(report.answers, vec![tuple![3], tuple![4]]);
    }

    #[test]
    fn recursive_chain_all_schedules() {
        let network = network_for(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             ?- path(0, Z).",
            &[(0, 1), (1, 2)],
        );
        let config = ExploreConfig {
            delay_budget: 2,
            window: 3,
            max_transitions: 120_000,
            ..ExploreConfig::default()
        };
        let report = explore(&network, config).unwrap();
        assert_eq!(report.answers, vec![tuple![1], tuple![2]]);
        assert!(report.executions > 1);
    }

    #[test]
    fn recursive_cycle_survives_reordering() {
        // A cyclic EDB stresses the probe protocol: answers circulate
        // while probe waves are in flight, and reordered deliveries races
        // the probes against late work.
        let network = network_for(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             ?- path(0, Z).",
            &[(0, 1), (1, 0)],
        );
        let config = ExploreConfig {
            delay_budget: 2,
            window: 3,
            ..ExploreConfig::default()
        };
        let report = explore(&network, config).unwrap();
        assert_eq!(report.answers, vec![tuple![0], tuple![1]]);
        assert!(report.executions > 1);
    }

    #[test]
    fn empty_answer_still_terminates_under_all_schedules() {
        let network = network_for(
            "path(X, Y) :- edge(X, Y).
             path(X, Z) :- path(X, Y), edge(Y, Z).
             ?- path(7, Z).",
            &[(0, 1)],
        );
        let config = ExploreConfig {
            delay_budget: 2,
            window: 3,
            ..ExploreConfig::default()
        };
        let report = explore(&network, config).unwrap();
        assert!(report.answers.is_empty());
        assert!(report.executions >= 1);
    }
}
