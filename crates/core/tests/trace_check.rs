//! End-to-end trace verification and deterministic replay.
//!
//! Every test records a real execution with [`Engine::with_trace`] and
//! feeds the clock-stamped event trace to the offline checker
//! (`mp_trace::check`) — the acceptance sweep covers every canonical
//! workload, both runtimes, and ≥16 chaos seeds, and must come back
//! clean. Separately, corrupting a *real* recorded trace must fire the
//! checker, a chaos-seeded threaded run must replay deterministically in
//! the simulator with identical answers and logical counters, and the
//! trace's own logical counts must agree with the engine's
//! batching-invariant `Stats` counters.

use mp_datalog::parser::parse_program;
use mp_datalog::Database;
use mp_engine::{Engine, FaultPlan, QueryResult, RuntimeKind, Schedule};
use mp_storage::tuple;
use mp_trace::{check, logical_counts, EventKind, Trace};
use std::time::Duration;

/// A canonical workload: name, program text, and edge facts.
struct Canonical {
    name: &'static str,
    src: &'static str,
    edges: &'static [(&'static str, i64, i64)],
}

/// Same canonical recursive workloads as the chaos suite: linear and
/// nonlinear transitive closure over chains and cycles, mutual
/// recursion, and the paper's P1.
const CANONICAL: &[Canonical] = &[
    Canonical {
        name: "tc-chain",
        src: "path(X, Y) :- edge(X, Y).
              path(X, Z) :- path(X, Y), edge(Y, Z).
              ?- path(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 4),
            ("edge", 4, 5),
        ],
    },
    Canonical {
        name: "tc-cycle",
        src: "path(X, Y) :- edge(X, Y).
              path(X, Z) :- path(X, Y), edge(Y, Z).
              ?- path(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 0),
            ("edge", 2, 4),
        ],
    },
    Canonical {
        name: "tc-nonlinear",
        src: "path(X, Y) :- edge(X, Y).
              path(X, Z) :- path(X, Y), path(Y, Z).
              ?- path(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 4),
        ],
    },
    Canonical {
        name: "odd-even",
        src: "odd(X, Y) :- edge(X, Y).
              odd(X, Y) :- edge(X, U), even(U, Y).
              even(X, Y) :- edge(X, U), odd(U, Y).
              ?- odd(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 4),
        ],
    },
    Canonical {
        name: "p1",
        src: "p(X, Y) :- q(X, Y).
              p(X, Z) :- r(X, W), p(W, Y), q(Y, Z).
              ?- p(3, Z).",
        edges: &[
            ("q", 1, 2),
            ("q", 2, 3),
            ("q", 3, 4),
            ("q", 4, 5),
            ("r", 3, 2),
            ("r", 2, 1),
        ],
    },
];

fn engine_for(w: &Canonical) -> Engine {
    let program = parse_program(w.src).unwrap();
    let mut db = Database::new();
    for &(p, a, b) in w.edges {
        db.insert(p, tuple![a, b]).unwrap();
    }
    Engine::new(program, db).with_trace(true)
}

/// Chaos plan tuned for test-time horizons on the threaded runtime.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        retransmit_after: 20,
        max_delay: 4,
        ..FaultPlan::seeded(seed)
    }
}

fn assert_clean(name: &str, ctx: &str, r: &QueryResult) -> Trace {
    let events = r
        .events
        .clone()
        .unwrap_or_else(|| panic!("{name} [{ctx}]: tracing enabled but no events recorded"));
    assert!(
        !events.events.is_empty(),
        "{name} [{ctx}]: empty event trace"
    );
    assert_eq!(events.dropped, 0, "{name} [{ctx}]: ring overflowed");
    let diags = check(&events);
    assert!(
        diags.is_empty(),
        "{name} [{ctx}]: checker fired on a real execution:\n{}",
        diags
            .iter()
            .map(|d| d.render(name, "  "))
            .collect::<Vec<_>>()
            .join("\n")
    );
    events
}

/// Acceptance sweep, simulator: every canonical workload, FIFO plus 16
/// random schedules, and 16 chaos seeds (wire faults + a crash), all
/// check clean.
#[test]
fn sim_traces_check_clean() {
    for w in CANONICAL {
        let fifo = engine_for(w).evaluate().unwrap();
        assert_clean(w.name, "fifo", &fifo);
        for seed in 0..16u64 {
            let r = engine_for(w)
                .with_runtime(RuntimeKind::Sim(Schedule::Random(seed)))
                .evaluate()
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", w.name));
            assert_clean(w.name, &format!("random {seed}"), &r);
        }
        let nodes = fifo.graph_nodes;
        for seed in 0..16u64 {
            let plan = FaultPlan::seeded(seed).with_crash((seed as usize * 7 + 1) % nodes, 2);
            let r = engine_for(w)
                .with_fault_plan(plan)
                .evaluate()
                .unwrap_or_else(|e| panic!("{} chaos {seed}: {e}", w.name));
            let events = assert_clean(w.name, &format!("chaos {seed}"), &r);
            if r.stats.crashes > 0 {
                // Crash/recover pairs must be visible in the trace.
                let crashes = events
                    .events
                    .iter()
                    .filter(|e| matches!(e.kind, EventKind::Crash { .. }))
                    .count() as u64;
                assert_eq!(crashes, r.stats.crashes, "{} chaos {seed}", w.name);
            }
        }
    }
}

/// Acceptance sweep, threaded runtime: every canonical workload clean,
/// plus chaos seeds on the first three (the chaos suite's threaded
/// subset), all check clean.
#[test]
fn threaded_traces_check_clean() {
    for w in CANONICAL {
        let r = engine_for(w)
            .with_runtime(RuntimeKind::Threads)
            .with_timeout(Duration::from_secs(30))
            .evaluate()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_clean(w.name, "threads clean", &r);
    }
    for w in &CANONICAL[..3] {
        for seed in 0..4u64 {
            let r = engine_for(w)
                .with_runtime(RuntimeKind::Threads)
                .with_timeout(Duration::from_secs(30))
                .with_fault_plan(chaos_plan(seed))
                .evaluate()
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", w.name));
            assert_clean(w.name, &format!("threads chaos {seed}"), &r);
        }
    }
}

/// Corrupting a *real* recorded trace (not a synthetic fixture) must
/// fire the checker: a store that shrinks, a delivery whose clock is
/// rolled back, and a lost delivery all surface as MP3xx diagnostics.
#[test]
fn corrupted_real_trace_fires() {
    let w = &CANONICAL[0];
    let r = engine_for(w).evaluate().unwrap();
    let clean = assert_clean(w.name, "fifo", &r);

    // Monotone flow violation: take two stores to the same relation by
    // the same actor and inflate the earlier one past the later — the
    // later store now reads as a shrink.
    let mut t = clean.clone();
    let stores: Vec<(usize, u32, u32, u64)> = t
        .events
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e.kind {
            EventKind::Store { rel, size } => Some((i, e.actor, rel, size)),
            _ => None,
        })
        .collect();
    let (early, late) = stores
        .iter()
        .enumerate()
        .find_map(|(k, &(i, actor, rel, _))| {
            stores[k + 1..]
                .iter()
                .find(|&&(_, a2, r2, _)| a2 == actor && r2 == rel)
                .map(|&(_, _, _, size_j)| ((i, rel), size_j))
        })
        .map(|((i, rel), size_j)| (i, (rel, size_j)))
        .expect("a recursive run stores the same relation repeatedly");
    let (rel, later_size) = late;
    t.events[early].kind = EventKind::Store {
        rel,
        size: later_size + 5,
    };
    // The same actor may store again later at the honest (larger) size,
    // which also trips the monotonicity check — every diagnostic must
    // still be the shrinking-relation code.
    let diags = check(&t);
    assert!(!diags.is_empty(), "shrunk store went undetected");
    assert!(
        diags.iter().all(|d| d.code.as_str() == "MP306"),
        "expected only MP306, got {diags:?}"
    );

    // Causality violation: roll a stamped delivery's vector clock back
    // below its send.
    let mut t = clean.clone();
    let idx = t
        .events
        .iter()
        .position(|e| {
            matches!(&e.kind, EventKind::Deliver { link_seq, .. } if *link_seq != mp_trace::NO_SEQ)
        })
        .expect("a real run delivers stamped messages");
    let sender = match t.events[idx].kind {
        EventKind::Deliver { from, .. } => from as usize,
        _ => unreachable!(),
    };
    t.events[idx].vclock[sender] = 0;
    let diags = check(&t);
    assert!(
        diags.iter().any(|d| d.code.as_str() == "MP301"),
        "clock rollback went undetected: {diags:?}"
    );

    // Lost delivery: drop a stamped Deliver event entirely; the link
    // develops a hole below its delivered maximum.
    let mut t = clean.clone();
    let last_stamped = t
        .events
        .iter()
        .rposition(|e| {
            matches!(&e.kind, EventKind::Deliver { link_seq, .. } if *link_seq != mp_trace::NO_SEQ)
        })
        .unwrap();
    // Removing the FIRST stamped delivery on some link leaves later
    // deliveries above the hole.
    let first_on_same_link = t.events[..last_stamped]
        .iter()
        .position(|e| matches!(&e.kind, EventKind::Deliver { link_seq, .. } if *link_seq == 0))
        .unwrap();
    t.events.remove(first_on_same_link);
    let diags = check(&t);
    assert!(
        !diags.is_empty(),
        "removed delivery went undetected (expected MP302/MP301): {diags:?}"
    );
}

/// Deterministic replay: a chaos-seeded *threaded* run re-executes in
/// the simulator, driven by the recorded delivery order, with identical
/// answers, exactly one End, and identical batching-invariant logical
/// counters. The trace round-trips through its text encoding first, so
/// the replay consumes exactly what `mp-check` would read from disk.
#[test]
fn threaded_chaos_run_replays_in_simulator() {
    for w in &CANONICAL[..3] {
        for seed in [1u64, 3] {
            let recorded = engine_for(w)
                .with_runtime(RuntimeKind::Threads)
                .with_timeout(Duration::from_secs(30))
                .with_fault_plan(chaos_plan(seed))
                .evaluate()
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", w.name));
            let trace = recorded.events.clone().unwrap();
            let reparsed = Trace::from_text(&trace.to_text()).unwrap();

            let replayed = engine_for(w)
                .replay(&reparsed)
                .unwrap_or_else(|e| panic!("{} seed {seed} replay: {e}", w.name));
            assert_eq!(
                replayed.answers.sorted_rows(),
                recorded.answers.sorted_rows(),
                "{} seed {seed}: replay diverged from the recorded run",
                w.name
            );
            assert_eq!(replayed.engine_ends, 1, "{} seed {seed}", w.name);
            assert_eq!(replayed.post_end_answers, 0, "{} seed {seed}", w.name);
            for (label, a, b) in [
                (
                    "tuple requests",
                    replayed.stats.logical_tuple_requests,
                    recorded.stats.logical_tuple_requests,
                ),
                (
                    "answers",
                    replayed.stats.logical_answers,
                    recorded.stats.logical_answers,
                ),
                (
                    "end requests",
                    replayed.stats.logical_end_tuple_requests,
                    recorded.stats.logical_end_tuple_requests,
                ),
            ] {
                assert_eq!(
                    a, b,
                    "{} seed {seed}: logical {label} diverged under replay",
                    w.name
                );
            }
            // The replay's own trace checks clean too.
            assert_clean(w.name, &format!("replay {seed}"), &replayed);
        }
    }
}

/// A random-schedule simulator run replays the same way — the recorded
/// activation order is honored, not just tolerated.
#[test]
fn sim_random_schedule_replays() {
    let w = &CANONICAL[1];
    let recorded = engine_for(w)
        .with_runtime(RuntimeKind::Sim(Schedule::Random(42)))
        .evaluate()
        .unwrap();
    let trace = recorded.events.clone().unwrap();
    let replayed = engine_for(w).replay(&trace).unwrap();
    assert_eq!(
        replayed.answers.sorted_rows(),
        recorded.answers.sorted_rows()
    );
    assert_eq!(
        replayed.stats.logical_answers,
        recorded.stats.logical_answers
    );
}

/// The trace's logical counts agree with the engine's batching-invariant
/// `Stats` counters, at every batch size and on both runtimes — PR 4's
/// invariance, checked through an independent observer.
#[test]
fn trace_logical_counts_match_stats() {
    let w = &CANONICAL[0];
    let scalar = engine_for(w).evaluate().unwrap();
    for batch in [1usize, 4, 64] {
        let r = engine_for(w)
            .with_batching(true)
            .with_batch_size(batch)
            .evaluate()
            .unwrap();
        let events = assert_clean(w.name, &format!("batch {batch}"), &r);
        let counts = logical_counts(&events);
        assert_eq!(counts.tuple_requests, r.stats.logical_tuple_requests);
        assert_eq!(counts.answers, r.stats.logical_answers);
        assert_eq!(
            counts.end_tuple_requests,
            r.stats.logical_end_tuple_requests
        );
        // Invariance against the scalar baseline, via the trace alone.
        assert_eq!(counts.tuple_requests, scalar.stats.logical_tuple_requests);
        assert_eq!(counts.answers, scalar.stats.logical_answers);
    }
    let r = engine_for(w)
        .with_runtime(RuntimeKind::Threads)
        .with_timeout(Duration::from_secs(30))
        .evaluate()
        .unwrap();
    let events = assert_clean(w.name, "threads", &r);
    let counts = logical_counts(&events);
    assert_eq!(counts.tuple_requests, r.stats.logical_tuple_requests);
    assert_eq!(counts.answers, r.stats.logical_answers);
}

/// S4 regression: worker-thread spawn failure surfaces as the typed
/// `WorkerSpawn` error with a diagnostic message, not a panic (the
/// conversion from `std::thread::spawn`'s panicking path).
#[test]
fn worker_spawn_error_is_typed_and_displayed() {
    let e = mp_engine::runtime::RuntimeError::WorkerSpawn {
        node: 3,
        reason: "Resource temporarily unavailable".to_string(),
    };
    let text = e.to_string();
    assert!(text.contains("node #3"), "{text}");
    assert!(text.contains("Resource temporarily unavailable"), "{text}");
}

/// Tracing is strictly opt-in: the default engine records nothing.
#[test]
fn untraced_runs_carry_no_events() {
    let w = &CANONICAL[0];
    let program = parse_program(w.src).unwrap();
    let mut db = Database::new();
    for &(p, a, b) in w.edges {
        db.insert(p, tuple![a, b]).unwrap();
    }
    let r = Engine::new(program, db).evaluate().unwrap();
    assert!(r.events.is_none());
    assert!(r.trace.is_none());
}
