//! Engine edge cases: program shapes at the boundary of the §1 model.

use mp_datalog::parser::parse_program;
use mp_datalog::Database;
use mp_engine::{evaluate_str, Engine, EngineError};
use mp_storage::{tuple, Tuple};

#[test]
fn multiple_query_rules_union() {
    // Two query rules: goal is their union.
    let out = evaluate_str(
        "a(1). a(2). b(2). b(3).
         goal(X) :- a(X).
         goal(X) :- b(X).
         ?- goal(9).", // parser needs one ?-; add a third branch instead
    );
    // `?- goal(9)` adds goal()… actually `goal` in body is invalid; this
    // program is rejected — which is itself worth pinning down:
    assert!(out.is_err(), "goal may not appear in a rule body");

    let program = parse_program(
        "a(1). a(2). b(2). b(3).
         goal(X) :- a(X).
         goal(X) :- b(X).",
    )
    .unwrap();
    let out = Engine::new(program, Database::new()).evaluate().unwrap();
    assert_eq!(
        out.answers.sorted_rows(),
        vec![tuple![1], tuple![2], tuple![3]]
    );
}

#[test]
fn undefined_idb_predicate_is_empty() {
    // `q` has no rules and no facts: treated as an empty IDB relation.
    let out = evaluate_str(
        "e(1).
         p(X) :- e(X), q(X).
         ?- p(Z).",
    )
    .unwrap();
    assert!(out.answers.is_empty());
}

#[test]
fn same_subgoal_twice_in_one_rule() {
    let out = evaluate_str(
        "e(1, 2). e(2, 3).
         two(X, Z) :- e(X, Y), e(Y, Z).
         square(X) :- two(X, X).
         ?- two(X, Z).",
    )
    .unwrap();
    assert_eq!(out.answers.sorted_rows(), vec![tuple![1, 3]]);
}

#[test]
fn deep_nonrecursive_rule_chain() {
    // 60 stacked rules: the End cascade and graph construction must
    // handle depth without issue.
    let mut src = String::from("p0(X) :- e(X).\n");
    for i in 1..60 {
        src.push_str(&format!("p{i}(X) :- p{}(X).\n", i - 1));
    }
    src.push_str("?- p59(Z).\n");
    let program = parse_program(&src).unwrap();
    let mut db = Database::new();
    db.insert("e", tuple![7]).unwrap();
    db.insert("e", tuple![8]).unwrap();
    let out = Engine::new(program, db).evaluate().unwrap();
    assert_eq!(out.answers.sorted_rows(), vec![tuple![7], tuple![8]]);
    assert_eq!(out.stats.protocol_messages, 0);
}

#[test]
fn long_recursive_chain() {
    let program = parse_program(
        "path(X, Y) :- edge(X, Y).
         path(X, Z) :- path(X, Y), edge(Y, Z).
         ?- path(0, Z).",
    )
    .unwrap();
    let mut db = Database::new();
    let n = 500;
    for i in 0..n {
        db.insert("edge", tuple![i, i + 1]).unwrap();
    }
    let out = Engine::new(program, db).evaluate().unwrap();
    assert_eq!(out.answers.len(), n as usize);
}

#[test]
fn wide_union_of_many_rules() {
    let mut src = String::new();
    for i in 0..40 {
        src.push_str(&format!("p(X) :- e{i}(X).\n"));
    }
    src.push_str("?- p(Z).\n");
    let program = parse_program(&src).unwrap();
    let mut db = Database::new();
    for i in 0..40 {
        db.insert(format!("e{i}").as_str(), tuple![i]).unwrap();
    }
    let out = Engine::new(program, db).evaluate().unwrap();
    assert_eq!(out.answers.len(), 40);
}

#[test]
fn self_join_on_both_columns() {
    // refl(X, Y) requires e(X, Y) and e(Y, X): a two-way join with the
    // same EDB relation under two different adornments.
    let out = evaluate_str(
        "e(1, 2). e(2, 1). e(3, 4).
         mutual(X, Y) :- e(X, Y), e(Y, X).
         ?- mutual(X, Y).",
    )
    .unwrap();
    assert_eq!(out.answers.sorted_rows(), vec![tuple![1, 2], tuple![2, 1]]);
}

#[test]
fn constants_everywhere() {
    let out = evaluate_str(
        "e(1, 2).
         p(7, \"tag\") :- e(1, 2).
         ?- p(X, Y).",
    )
    .unwrap();
    assert_eq!(out.answers.rows(), &[tuple![7, "tag"]]);
}

#[test]
fn bound_bound_query() {
    // Both goal arguments constant: boolean-style membership test.
    let out = evaluate_str(
        "edge(1, 2). edge(2, 3).
         path(X, Y) :- edge(X, Y).
         path(X, Z) :- path(X, Y), edge(Y, Z).
         ?- path(1, 3).",
    )
    .unwrap();
    assert_eq!(out.answers.len(), 1);
    assert_eq!(out.answers.rows()[0], Tuple::unit());

    let no = evaluate_str(
        "edge(1, 2).
         path(X, Y) :- edge(X, Y).
         path(X, Z) :- path(X, Y), edge(Y, Z).
         ?- path(2, 1).",
    )
    .unwrap();
    assert!(no.answers.is_empty());
}

#[test]
fn string_and_integer_constants_do_not_unify() {
    let out = evaluate_str(
        "e(1). e(\"1\").
         p(X) :- e(X).
         ?- p(1).",
    )
    .unwrap();
    assert_eq!(out.answers.len(), 1, "only the integer matches");
}

#[test]
fn recursion_through_two_rules_of_same_pred() {
    // Both recursive rules contribute; cycle refs under each.
    let out = evaluate_str(
        "e(0, 1). e(1, 2). f(2, 3). f(3, 4).
         p(X, Y) :- e(X, Y).
         p(X, Y) :- f(X, Y).
         p(X, Z) :- p(X, Y), p(Y, Z).
         ?- p(0, Z).",
    )
    .unwrap();
    assert_eq!(
        out.answers.sorted_rows(),
        vec![tuple![1], tuple![2], tuple![3], tuple![4]]
    );
}

#[test]
fn divergence_guard_reports_steps() {
    let program = parse_program(
        "p(X, Y) :- e(X, Y).
         p(X, Z) :- p(X, Y), p(Y, Z).
         ?- p(0, Z).",
    )
    .unwrap();
    let mut db = Database::new();
    for i in 0..50 {
        db.insert("e", tuple![i % 10, (i + 1) % 10]).unwrap();
    }
    let err = Engine::new(program, db)
        .with_max_steps(10)
        .evaluate()
        .unwrap_err();
    match err {
        EngineError::Runtime(mp_engine::runtime::RuntimeError::Diverged { steps }) => {
            assert!(steps > 10);
        }
        other => panic!("expected divergence, got {other:?}"),
    }
}

#[test]
fn empty_relation_declared_but_no_facts() {
    let program = parse_program(
        "p(X) :- e(X).
         ?- p(Z).",
    )
    .unwrap();
    let mut db = Database::new();
    db.declare("e", 1).unwrap();
    let out = Engine::new(program, db).evaluate().unwrap();
    assert!(out.answers.is_empty());
}

#[test]
fn answers_deduplicate_across_rules() {
    // The same tuple derivable through three different rules appears
    // once ("only forward answer tuples that are genuinely new", §3.1).
    let out = evaluate_str(
        "a(5). b(5). c(5).
         p(X) :- a(X).
         p(X) :- b(X).
         p(X) :- c(X).
         ?- p(Z).",
    )
    .unwrap();
    assert_eq!(out.answers.len(), 1);
    assert!(out.stats.answers >= 3, "three rule nodes answered");
}
