//! Worker-pool scheduler suite: schedule invariance (Thm 3.1/4.1)
//! across pool sizes and steal orders.
//!
//! The work-stealing runtime multiplexes node activations onto a fixed
//! worker pool, so the *physical* schedule varies run to run (which
//! worker activates which node, who steals what). The paper's theorems
//! say none of that may be observable: the answer set and the logical
//! message counters (bindings, answers, per-binding completions — the
//! batching- and schedule-invariant traffic) must be bit-identical to
//! the deterministic simulator, at every pool size, with and without an
//! adversarial fault plan. Every test here pins the simulator as the
//! ground truth and sweeps the pool against it.

use mp_datalog::parser::parse_program;
use mp_datalog::Database;
use mp_engine::{Engine, FaultPlan, QueryResult, RuntimeKind, Schedule, Stats};
use mp_storage::{tuple, Tuple};
use proptest::prelude::*;
use std::time::Duration;

struct Workload {
    name: &'static str,
    src: &'static str,
    edges: &'static [(&'static str, i64, i64)],
}

/// Recursive workloads with enough fan-out that several nodes are
/// runnable at once — the regime where stealing actually happens.
const WORKLOADS: &[Workload] = &[
    Workload {
        name: "tc-cycle",
        src: "path(X, Y) :- edge(X, Y).
              path(X, Z) :- path(X, Y), edge(Y, Z).
              ?- path(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 0),
            ("edge", 2, 4),
            ("edge", 4, 5),
        ],
    },
    Workload {
        name: "tc-nonlinear",
        src: "path(X, Y) :- edge(X, Y).
              path(X, Z) :- path(X, Y), path(Y, Z).
              ?- path(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 4),
            ("edge", 4, 5),
        ],
    },
    Workload {
        name: "odd-even",
        src: "odd(X, Y) :- edge(X, Y).
              odd(X, Y) :- edge(X, U), even(U, Y).
              even(X, Y) :- edge(X, U), odd(U, Y).
              ?- odd(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 4),
            ("edge", 4, 5),
        ],
    },
];

fn engine_for(w: &Workload) -> Engine {
    let program = parse_program(w.src).unwrap();
    let mut db = Database::new();
    for &(p, a, b) in w.edges {
        db.insert(p, tuple![a, b]).unwrap();
    }
    Engine::new(program, db).with_timeout(Duration::from_secs(30))
}

fn rows(r: &QueryResult) -> Vec<Tuple> {
    r.answers.sorted_rows()
}

/// The schedule-invariant projection of [`Stats`]: the data-plane
/// logical traffic, all of which is causally complete before the final
/// `End` reaches the engine (the probe wave confirms quiescence first).
/// Physical framing (batch counts), transport repair (retransmits,
/// acks), probe-wave counts, and scheduler behavior all legitimately
/// vary with timing; so does `stream_ends`, because the engine tears
/// the pool down on its `End` while the node-to-node tail of the end
/// cascade may still be in flight.
fn logical(stats: &Stats) -> (u64, u64, u64, u64) {
    (
        stats.relation_requests,
        stats.logical_tuple_requests,
        stats.logical_answers,
        stats.logical_end_tuple_requests,
    )
}

/// Assert a pooled run is indistinguishable from the simulator run in
/// every observable the theorems cover.
fn assert_matches_sim(name: &str, ctx: &str, sim: &QueryResult, pooled: &QueryResult) {
    assert_eq!(
        pooled.engine_ends, 1,
        "{name} [{ctx}]: expected exactly one End, got {}",
        pooled.engine_ends
    );
    assert_eq!(
        pooled.post_end_answers, 0,
        "{name} [{ctx}]: answers arrived after the final End"
    );
    assert_eq!(
        rows(pooled),
        rows(sim),
        "{name} [{ctx}]: answers diverged from the simulator"
    );
    assert_eq!(
        logical(&pooled.stats),
        logical(&sim.stats),
        "{name} [{ctx}]: logical message counters diverged from the simulator"
    );
}

/// Answers and logical counters are invariant across pool sizes,
/// including a pool larger than the graph (clamped to the node count)
/// and the auto-sized default.
#[test]
fn pool_sizes_are_observably_identical_to_sim() {
    for w in WORKLOADS {
        let sim = engine_for(w).evaluate().unwrap();
        assert!(!rows(&sim).is_empty(), "{}: empty baseline", w.name);
        assert_eq!(
            sim.stats.sched_activations, 0,
            "{}: the simulator must not report pool activity",
            w.name
        );
        for workers in [1usize, 2, 3, 4, 8, 0] {
            let r = engine_for(w)
                .with_runtime(RuntimeKind::Threads)
                .with_workers(workers)
                .evaluate()
                .unwrap_or_else(|e| panic!("{} workers {workers}: {e}", w.name));
            assert_matches_sim(w.name, &format!("workers {workers}"), &sim, &r);
            assert!(
                r.stats.sched_activations > 0,
                "{} workers {workers}: pool reported no activations",
                w.name
            );
            assert!(
                r.stats.sched_max_queue > 0,
                "{} workers {workers}: queue high-water mark never moved",
                w.name
            );
        }
    }
}

// The simulator's random schedules and the pool's real interleavings
// land on the same observables: sim(random seed) == sim(fifo) ==
// pool(workers), for any seed and pool size. Each proptest case is a
// fresh OS-level run, so repeated cases at the same worker count also
// sweep distinct steal orders.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn answers_and_logical_stats_invariant_under_pool_and_schedule(
        workload in 0usize..3,
        workers in 1usize..=6,
        seed in 0u64..u64::MAX,
    ) {
        let w = &WORKLOADS[workload];
        let sim = engine_for(w).evaluate().unwrap();
        let shuffled = engine_for(w)
            .with_runtime(RuntimeKind::Sim(Schedule::Random(seed)))
            .evaluate()
            .unwrap();
        prop_assert_eq!(rows(&shuffled), rows(&sim));
        prop_assert_eq!(logical(&shuffled.stats), logical(&sim.stats));
        let pooled = engine_for(w)
            .with_runtime(RuntimeKind::Threads)
            .with_workers(workers)
            .evaluate()
            .unwrap();
        prop_assert_eq!(rows(&pooled), rows(&sim));
        prop_assert_eq!(logical(&pooled.stats), logical(&sim.stats));
        prop_assert_eq!(pooled.engine_ends, 1);
        prop_assert_eq!(pooled.post_end_answers, 0);
    }
}

/// Chaos at width: 16 seeded fault plans at 4 workers. The recovery
/// transport and the scheduled-bit protocol have to cooperate — ticks
/// retransmit for idle nodes while activations race across workers —
/// and the observables still must not move.
#[test]
fn pool_chaos_16_seeds_at_4_workers() {
    for w in WORKLOADS {
        let sim = engine_for(w).evaluate().unwrap();
        for seed in 0..16u64 {
            let plan = FaultPlan {
                // Tight horizons so retransmission happens in test time.
                retransmit_after: 20,
                max_delay: 4,
                ..FaultPlan::seeded(seed)
            };
            let r = engine_for(w)
                .with_runtime(RuntimeKind::Threads)
                .with_workers(4)
                .with_fault_plan(plan)
                .evaluate()
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", w.name));
            // Wire repair may resend logical traffic frames, but the
            // *logical* counters count each send once — still invariant.
            assert_matches_sim(w.name, &format!("chaos seed {seed}"), &sim, &r);
        }
    }
}

/// Crash recovery inside an activation: the crashed node replays its
/// durable log on whichever worker holds it, at every pool size.
#[test]
fn pool_recovers_from_crashes_at_every_width() {
    let w = &WORKLOADS[0];
    let sim = engine_for(w).evaluate().unwrap();
    for workers in [1usize, 2, 4] {
        let plan = FaultPlan {
            retransmit_after: 20,
            ..FaultPlan::default()
        }
        .with_crash(1, 2)
        .with_crash(2, 3);
        let r = engine_for(w)
            .with_runtime(RuntimeKind::Threads)
            .with_workers(workers)
            .with_fault_plan(plan)
            .evaluate()
            .unwrap_or_else(|e| panic!("workers {workers}: {e}"));
        assert_matches_sim(w.name, &format!("crash, workers {workers}"), &sim, &r);
        assert!(r.stats.crashes > 0, "workers {workers}: crash never fired");
    }
}

/// A single-worker pool serializes everything, so it can never steal;
/// the counters must agree with that.
#[test]
fn single_worker_pool_never_steals() {
    let w = &WORKLOADS[0];
    let r = engine_for(w)
        .with_runtime(RuntimeKind::Threads)
        .with_workers(1)
        .evaluate()
        .unwrap();
    assert_eq!(r.stats.sched_steals, 0);
    assert_eq!(r.stats.sched_steal_failures, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Budget trips on the pool are schedule-invariant in what they
    /// claim: whatever the steal order and worker count, a tripped run
    /// surfaces the typed `BudgetExceeded` (right resource, ≥ 1 cancel
    /// wave, accounting for every node, partial answers from the true
    /// fixpoint) — and a run that outraces the trip still satisfies the
    /// Thm 3.1 observables exactly.
    #[test]
    fn budget_trips_are_typed_at_any_width(
        workload in 0usize..3,
        workers in 1usize..=6,
        budget in 10u64..80,
    ) {
        use mp_engine::runtime::{RuntimeError, Trip};
        use mp_engine::QueryBudget;
        let w = &WORKLOADS[workload];
        let sim = engine_for(w).evaluate().unwrap();
        let truth: std::collections::BTreeSet<Tuple> = rows(&sim).into_iter().collect();
        let result = engine_for(w)
            .with_runtime(RuntimeKind::Threads)
            .with_workers(workers)
            .with_budget(QueryBudget::new().with_max_messages(budget))
            .evaluate();
        match result {
            Ok(r) => {
                prop_assert_eq!(rows(&r), rows(&sim));
                prop_assert_eq!(r.engine_ends, 1);
                prop_assert_eq!(r.post_end_answers, 0);
            }
            Err(mp_engine::EngineError::Runtime(RuntimeError::BudgetExceeded {
                resource,
                limit,
                used,
                partial,
                accounting,
                cancel_waves,
            })) => {
                prop_assert_eq!(resource, Trip::Messages);
                prop_assert_eq!(limit, budget);
                prop_assert!(used >= limit);
                prop_assert!(cancel_waves >= 1);
                prop_assert_eq!(accounting.len(), sim.graph_nodes);
                for t in &partial {
                    prop_assert!(truth.contains(t), "partial answer {} outside the fixpoint", t);
                }
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}
