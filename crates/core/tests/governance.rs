//! Resource-governance acceptance suite: query budgets, cooperative
//! cancellation waves, and credit-based backpressure.
//!
//! The contract under test (ISSUE 8 / DESIGN.md "Resource governance"):
//!
//! 1. crossing the message or memory budget returns the **typed**
//!    `BudgetExceeded` error, carrying the partial answers derived so
//!    far plus per-node accounting — identically on the simulator and
//!    the worker pool;
//! 2. an explicit [`CancelToken`] trip returns `Cancelled` with the
//!    same payload, and always drains (never hangs), also mid-chaos;
//! 3. with a mailbox bound, credit windows on the recovery transport
//!    cap queue depth under adversarial fan-in without deadlocking
//!    recursive components (intra-SCC links are never windowed);
//! 4. an unlimited budget is observably free: the legacy
//!    `with_max_steps`/`with_timeout` shims keep their historical
//!    errors, and governed clean-path runs stay bit-identical.

use mp_datalog::parser::parse_program;
use mp_datalog::Database;
use mp_engine::runtime::RuntimeError;
use mp_engine::runtime::Trip;
use mp_engine::{Engine, EngineError, FaultPlan, QueryBudget, QueryResult, RuntimeKind, Schedule};
use mp_storage::{tuple, Tuple};
use std::collections::BTreeSet;
use std::time::Duration;

/// Recursive workload with heavy fan-in: dense transitive closure over
/// a random-ish graph. Enough traffic to trip small budgets mid-run.
fn tc_dense(n: i64) -> Engine {
    let program = parse_program(
        "path(X, Y) :- edge(X, Y).
         path(X, Z) :- path(X, Y), edge(Y, Z).
         ?- path(0, Z).",
    )
    .unwrap();
    let mut db = Database::new();
    for i in 0..n {
        db.insert("edge", tuple![i, (i + 1) % n]).unwrap();
        db.insert("edge", tuple![i, (i * 3 + 1) % n]).unwrap();
        db.insert("edge", tuple![(i * 5 + 2) % n, i]).unwrap();
    }
    Engine::new(program, db)
}

fn rows(r: &QueryResult) -> Vec<Tuple> {
    r.answers.sorted_rows()
}

fn runtime_err(e: EngineError) -> RuntimeError {
    match e {
        EngineError::Runtime(r) => r,
        other => panic!("expected a runtime error, got {other}"),
    }
}

/// The shims forward into the budget: `with_max_steps` still raises
/// `Diverged`, `with_timeout` still raises `Timeout`, on both runtimes.
#[test]
fn legacy_shims_keep_their_historical_errors() {
    let err = runtime_err(tc_dense(8).with_max_steps(5).evaluate().unwrap_err());
    assert!(matches!(err, RuntimeError::Diverged { .. }), "{err}");

    // Same through the explicit budget API.
    let err = runtime_err(
        tc_dense(8)
            .with_budget(QueryBudget::new().with_max_steps(5))
            .evaluate()
            .unwrap_err(),
    );
    assert!(matches!(err, RuntimeError::Diverged { .. }), "{err}");

    // A zero wall-clock budget on the pool times out before any End.
    let err = runtime_err(
        tc_dense(8)
            .with_runtime(RuntimeKind::Threads)
            .with_timeout(Duration::from_nanos(1))
            .evaluate()
            .unwrap_err(),
    );
    assert!(matches!(err, RuntimeError::Timeout { .. }), "{err}");
}

/// A tripped message budget returns the typed error with partial
/// answers (a subset of the full fixpoint) and full per-node accounting.
#[test]
fn message_budget_trips_with_partial_answers_and_accounting() {
    let full = tc_dense(12).evaluate().unwrap();
    let full_rows: BTreeSet<Tuple> = rows(&full).into_iter().collect();

    let err = runtime_err(
        tc_dense(12)
            .with_budget(QueryBudget::new().with_max_messages(40))
            .evaluate()
            .unwrap_err(),
    );
    let RuntimeError::BudgetExceeded {
        resource,
        limit,
        used,
        partial,
        accounting,
        cancel_waves,
    } = err
    else {
        panic!("expected BudgetExceeded, got {err}");
    };
    assert_eq!(resource, Trip::Messages);
    assert_eq!(limit, 40);
    assert!(used >= limit, "trip reported below the limit: {used}");
    assert!(cancel_waves >= 1);
    assert!(
        partial.iter().all(|t| full_rows.contains(t)),
        "partial answers must be a subset of the fixpoint"
    );
    assert_eq!(
        accounting.len(),
        full.graph_nodes,
        "accounting carries one row per node"
    );
    assert!(
        accounting.iter().any(|u| u.messages_processed > 0),
        "some node processed work before the trip"
    );
}

/// The same trip on the deterministic FIFO schedule is bit-identical
/// across runs: same partial answers, same accounting, same counters.
#[test]
fn budget_trip_is_deterministic_on_fifo() {
    let run = || {
        runtime_err(
            tc_dense(12)
                .with_runtime(RuntimeKind::Sim(Schedule::Fifo))
                .with_budget(QueryBudget::new().with_max_messages(60))
                .evaluate()
                .unwrap_err(),
        )
    };
    assert_eq!(run(), run(), "FIFO budget trips must be reproducible");
}

/// A memory budget low enough to be crossed by the first injection
/// trips as `Bytes`.
#[test]
fn memory_budget_trips_as_bytes() {
    let err = runtime_err(
        tc_dense(12)
            .with_budget(QueryBudget::new().with_max_bytes(1))
            .evaluate()
            .unwrap_err(),
    );
    let RuntimeError::BudgetExceeded { resource, used, .. } = err else {
        panic!("expected BudgetExceeded, got {err}");
    };
    assert_eq!(resource, Trip::Bytes);
    assert!(used > 1);
}

/// A pre-tripped cancel token returns `Cancelled` immediately — the
/// wave drains the network instead of evaluating it.
#[test]
fn explicit_cancel_returns_cancelled_with_drain() {
    for runtime in [RuntimeKind::Sim(Schedule::Fifo), RuntimeKind::Threads] {
        let engine = tc_dense(12).with_runtime(runtime);
        engine.cancel_token().cancel();
        let err = runtime_err(engine.evaluate().unwrap_err());
        let RuntimeError::Cancelled { cancel_waves, .. } = &err else {
            panic!("expected Cancelled, got {err}");
        };
        assert_eq!(*cancel_waves, 1, "exactly one wave per trip");
    }
}

/// Cancelling from another thread mid-evaluation stops the pool run
/// with the typed error (or finishes first on a fast machine) — it must
/// never hang or panic.
#[test]
fn cross_thread_cancel_stops_the_pool() {
    let engine = tc_dense(48).with_runtime(RuntimeKind::Threads);
    let token = engine.cancel_token();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(2));
        token.cancel();
    });
    match engine.evaluate() {
        Ok(_) => {} // finished before the cancel landed
        Err(e) => {
            let err = runtime_err(e);
            assert!(
                matches!(err, RuntimeError::Cancelled { .. }),
                "expected Cancelled, got {err}"
            );
        }
    }
    canceller.join().unwrap();
}

/// Sim and pool surface the same error *shape* for the same budget:
/// same variant, same resource, accounting for every node. (Message
/// interleaving differs on the pool, so `used` and the partial set may
/// legitimately differ.)
#[test]
fn sim_and_pool_trip_identically_shaped_errors() {
    let budget = QueryBudget::new().with_max_messages(40);
    let sim = runtime_err(
        tc_dense(12)
            .with_budget(budget.clone())
            .evaluate()
            .unwrap_err(),
    );
    let pool = runtime_err(
        tc_dense(12)
            .with_runtime(RuntimeKind::Threads)
            .with_budget(budget)
            .evaluate()
            .unwrap_err(),
    );
    match (&sim, &pool) {
        (
            RuntimeError::BudgetExceeded {
                resource: ra,
                limit: la,
                accounting: aa,
                ..
            },
            RuntimeError::BudgetExceeded {
                resource: rb,
                limit: lb,
                accounting: ab,
                ..
            },
        ) => {
            assert_eq!(ra, rb);
            assert_eq!(la, lb);
            assert_eq!(aa.len(), ab.len(), "both account for every node");
        }
        other => panic!("expected two BudgetExceeded errors, got {other:?}"),
    }
}

/// Credit-based backpressure: with a mailbox bound on a zero-fault
/// transport, queue depth under fan-in is capped (high water no worse
/// than unbounded, stalls observed) while the answers stay bit-identical
/// — bounding never deadlocks the recursive component.
#[test]
fn mailbox_bound_caps_queues_without_changing_answers() {
    let unbounded = tc_dense(16)
        .with_fault_plan(FaultPlan::default())
        .evaluate()
        .unwrap();
    let bounded = tc_dense(16)
        .with_fault_plan(FaultPlan::default())
        .with_budget(QueryBudget::new().with_mailbox_bound(1))
        .evaluate()
        .unwrap();
    assert_eq!(rows(&bounded), rows(&unbounded), "answers diverged");
    assert_eq!(bounded.engine_ends, 1);
    assert!(
        bounded.stats.credits_stalled > 0,
        "window of 1 on this fan-in must stall at least one frame"
    );
    assert!(
        bounded.stats.mailbox_high_water <= unbounded.stats.mailbox_high_water,
        "bounded run queued deeper than unbounded: {} > {}",
        bounded.stats.mailbox_high_water,
        unbounded.stats.mailbox_high_water
    );
}

/// Backpressure composes with real faults: drops/dups/delays plus a
/// tight window still converge to the exact fixpoint.
#[test]
fn mailbox_bound_survives_chaos() {
    let baseline = tc_dense(12).evaluate().unwrap();
    for seed in 0..8u64 {
        let r = tc_dense(12)
            .with_fault_plan(FaultPlan::seeded(seed))
            .with_budget(QueryBudget::new().with_mailbox_bound(2))
            .evaluate()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(rows(&r), rows(&baseline), "seed {seed} diverged");
        assert_eq!(r.engine_ends, 1, "seed {seed}");
        assert_eq!(r.post_end_answers, 0, "seed {seed}");
    }
}

/// An unlimited budget is free: the governed run's answers, logical
/// message counters, and Thm 3.1 observables are bit-identical to the
/// ungoverned seed behaviour, and the new counters stay quiet.
#[test]
fn unlimited_budget_is_observably_free() {
    let r = tc_dense(12)
        .with_budget(QueryBudget::default())
        .evaluate()
        .unwrap();
    let baseline = tc_dense(12).evaluate().unwrap();
    assert_eq!(rows(&r), rows(&baseline));
    assert_eq!(
        r.stats.logical_messages(),
        baseline.stats.logical_messages()
    );
    assert_eq!(r.stats.cancel_waves, 0);
    assert_eq!(r.stats.credits_stalled, 0);
    assert!(
        r.stats.mem_high_water_bytes > 0,
        "memory accounting runs even without a limit"
    );
}

/// The budget counts *logical* messages, so a trip threshold behaves
/// identically at every batch size (batching invariance, Thm 4.1 style).
#[test]
fn message_budget_is_batching_invariant() {
    let scalar = runtime_err(
        tc_dense(12)
            .with_budget(QueryBudget::new().with_max_messages(40))
            .evaluate()
            .unwrap_err(),
    );
    let batched = runtime_err(
        tc_dense(12)
            .with_batching(true)
            .with_batch_size(16)
            .with_budget(QueryBudget::new().with_max_messages(40))
            .evaluate()
            .unwrap_err(),
    );
    match (&scalar, &batched) {
        (
            RuntimeError::BudgetExceeded { resource: ra, .. },
            RuntimeError::BudgetExceeded { resource: rb, .. },
        ) => assert_eq!(ra, rb),
        other => panic!("expected two BudgetExceeded errors, got {other:?}"),
    }
}
