//! Chaos suite: Thm 3.1's observables under seeded fault injection.
//!
//! Every test runs a canonical workload under a deterministic
//! [`FaultPlan`] — drops, duplicates, delays (reordering), corruption,
//! node crashes — and asserts the theorem's conclusions still hold once
//! the self-healing transport and log-replay recovery are in the loop:
//!
//! 1. the engine receives **exactly one** `End`;
//! 2. the answer set is **bit-identical** to the fault-free run;
//! 3. **no answers arrive after** the final `End`;
//! 4. with every fault rate zero, the transport adds **zero overhead**
//!    to the clean path (no retransmissions, identical message counts).

use mp_datalog::parser::parse_program;
use mp_datalog::Database;
use mp_engine::{Engine, FaultPlan, QueryResult, RuntimeKind, Schedule};
use mp_storage::{tuple, Tuple};
use proptest::prelude::*;
use std::time::Duration;

/// A canonical workload: name, program text, and edge facts.
struct Canonical {
    name: &'static str,
    src: &'static str,
    edges: &'static [(&'static str, i64, i64)],
}

/// The canonical recursive workloads the chaos suite sweeps: linear and
/// nonlinear transitive closure over chains and cycles, mutual
/// recursion, and the paper's P1. Small enough that a 32-plan sweep is
/// fast, recursive enough that every one runs the Fig 2 protocol.
const CANONICAL: &[Canonical] = &[
    Canonical {
        name: "tc-chain",
        src: "path(X, Y) :- edge(X, Y).
              path(X, Z) :- path(X, Y), edge(Y, Z).
              ?- path(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 4),
            ("edge", 4, 5),
        ],
    },
    Canonical {
        name: "tc-cycle",
        src: "path(X, Y) :- edge(X, Y).
              path(X, Z) :- path(X, Y), edge(Y, Z).
              ?- path(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 0),
            ("edge", 2, 4),
        ],
    },
    Canonical {
        name: "tc-nonlinear",
        src: "path(X, Y) :- edge(X, Y).
              path(X, Z) :- path(X, Y), path(Y, Z).
              ?- path(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 4),
        ],
    },
    Canonical {
        name: "odd-even",
        src: "odd(X, Y) :- edge(X, Y).
              odd(X, Y) :- edge(X, U), even(U, Y).
              even(X, Y) :- edge(X, U), odd(U, Y).
              ?- odd(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 4),
        ],
    },
    Canonical {
        name: "p1",
        src: "p(X, Y) :- q(X, Y).
              p(X, Z) :- r(X, W), p(W, Y), q(Y, Z).
              ?- p(3, Z).",
        edges: &[
            ("q", 1, 2),
            ("q", 2, 3),
            ("q", 3, 4),
            ("q", 4, 5),
            ("r", 3, 2),
            ("r", 2, 1),
        ],
    },
];

fn engine_for(w: &Canonical) -> Engine {
    let program = parse_program(w.src).unwrap();
    let mut db = Database::new();
    for &(p, a, b) in w.edges {
        db.insert(p, tuple![a, b]).unwrap();
    }
    Engine::new(program, db)
}

fn rows(r: &QueryResult) -> Vec<Tuple> {
    r.answers.sorted_rows()
}

/// Assert the Thm 3.1 observables on a faulted run against its
/// fault-free baseline.
fn assert_confluent(name: &str, ctx: &str, baseline: &QueryResult, faulted: &QueryResult) {
    assert_eq!(
        faulted.engine_ends, 1,
        "{name} [{ctx}]: expected exactly one End, got {}",
        faulted.engine_ends
    );
    assert_eq!(
        faulted.post_end_answers, 0,
        "{name} [{ctx}]: answers arrived after the final End"
    );
    assert_eq!(
        rows(faulted),
        rows(baseline),
        "{name} [{ctx}]: answers diverged from the fault-free run"
    );
}

/// The acceptance sweep: every canonical workload × 32 seeded fault
/// plans (5% drop, 5% duplicate, 10% delay, 2% corruption — within the
/// "drop ≤ 10%, dup ≤ 10%" envelope), answers bit-identical, exactly
/// one End, nothing after End.
#[test]
fn chaos_sweep_32_seeded_plans() {
    for w in CANONICAL {
        let baseline = engine_for(w).evaluate().unwrap();
        assert!(!rows(&baseline).is_empty(), "{}: empty baseline", w.name);
        for seed in 0..32u64 {
            let r = engine_for(w)
                .with_fault_plan(FaultPlan::seeded(seed))
                .evaluate()
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", w.name));
            assert_confluent(w.name, &format!("seed {seed}"), &baseline, &r);
            assert!(
                r.stats.faults_injected() > 0,
                "{} seed {seed}: the plan never fired — sweep is vacuous",
                w.name
            );
        }
    }
}

/// Crashes on top of wire faults: up to two scheduled node crashes per
/// run, recovered by durable-log replay, still confluent.
#[test]
fn chaos_sweep_with_crashes() {
    for w in CANONICAL {
        let baseline = engine_for(w).evaluate().unwrap();
        let nodes = baseline.graph_nodes;
        for seed in 0..16u64 {
            let crash_a = (seed as usize * 7 + 1) % nodes;
            let crash_b = (seed as usize * 13 + 3) % nodes;
            let plan = FaultPlan::seeded(seed)
                .with_crash(crash_a, 1 + seed % 3)
                .with_crash(crash_b, 4 + seed % 5);
            let r = engine_for(w)
                .with_fault_plan(plan)
                .evaluate()
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", w.name));
            assert_confluent(
                w.name,
                &format!("seed {seed}, crashes {crash_a}/{crash_b}"),
                &baseline,
                &r,
            );
        }
    }
}

/// A crash alone (no wire faults) must recover and stay confluent, and
/// must be visible in the recovery counters.
#[test]
fn single_crash_recovers_by_log_replay() {
    let w = &CANONICAL[1]; // tc-cycle: saturation keeps nodes busy
    let baseline = engine_for(w).evaluate().unwrap();
    for node in 0..baseline.graph_nodes {
        let plan = FaultPlan::default().with_crash(node, 2);
        let r = engine_for(w).with_fault_plan(plan).evaluate().unwrap();
        assert_confluent(w.name, &format!("crash node {node}"), &baseline, &r);
        if r.stats.crashes > 0 {
            assert_eq!(r.stats.epoch_bumps, r.stats.crashes);
        }
    }
}

/// With recovery disabled, a crash that fires aborts the run with the
/// typed `LinkDown` error instead of hanging or panicking.
#[test]
fn crash_without_recovery_is_a_typed_error() {
    let w = &CANONICAL[1];
    let r = engine_for(w)
        .with_fault_plan(FaultPlan::default().with_crash(1, 1))
        .with_recovery(false)
        .evaluate();
    match r {
        Err(mp_engine::EngineError::Runtime(mp_engine::runtime::RuntimeError::LinkDown {
            node,
        })) => assert_eq!(node, 1),
        other => panic!("expected LinkDown, got {other:?}"),
    }
}

/// Zero-rate plan: the transport machinery engages (sequence numbers,
/// acks) but must inject nothing, retransmit nothing, and leave the
/// logical message counts identical to the clean path.
#[test]
fn zero_rate_plan_has_zero_overhead() {
    for w in CANONICAL {
        let clean = engine_for(w).evaluate().unwrap();
        let wired = engine_for(w)
            .with_fault_plan(FaultPlan::default())
            .evaluate()
            .unwrap();
        assert_confluent(w.name, "zero-rate", &clean, &wired);
        assert_eq!(wired.stats.faults_injected(), 0, "{}", w.name);
        assert_eq!(wired.stats.retransmits, 0, "{}", w.name);
        assert_eq!(wired.stats.retransmit_overhead(), 0.0, "{}", w.name);
        assert_eq!(
            wired.stats.total_messages(),
            clean.stats.total_messages(),
            "{}: transport changed the logical message count",
            w.name
        );
        assert_eq!(wired.stats.crashes, 0, "{}", w.name);
    }
}

/// Batching composes with the chaos adversary: a batch is one transport
/// frame (one seq, one ack, one checksum), so every observable of
/// Thm 3.1 survives faults with batching enabled at any flush bound,
/// and the *logical* tuple traffic is identical to the scalar path —
/// only the physical framing changes.
#[test]
fn chaos_sweep_with_batching() {
    for w in CANONICAL {
        let baseline = engine_for(w).evaluate().unwrap();
        for batch in [1usize, 4, 64] {
            for seed in 0..8u64 {
                let r = engine_for(w)
                    .with_batching(true)
                    .with_batch_size(batch)
                    .with_fault_plan(FaultPlan::seeded(seed))
                    .evaluate()
                    .unwrap_or_else(|e| panic!("{} batch {batch} seed {seed}: {e}", w.name));
                assert_confluent(
                    w.name,
                    &format!("batch {batch}, seed {seed}"),
                    &baseline,
                    &r,
                );
                assert_eq!(
                    r.stats.logical_answers, baseline.stats.logical_answers,
                    "{} batch {batch} seed {seed}: logical answer count changed",
                    w.name
                );
                assert_eq!(
                    r.stats.logical_tuple_requests, baseline.stats.logical_tuple_requests,
                    "{} batch {batch} seed {seed}: logical request count changed",
                    w.name
                );
            }
        }
        // Crashes on top: recovery replays logs that now contain batch
        // frames; still confluent.
        for seed in 0..4u64 {
            let nodes = baseline.graph_nodes;
            let plan = FaultPlan::seeded(seed).with_crash((seed as usize * 7 + 1) % nodes, 2);
            let r = engine_for(w)
                .with_batching(true)
                .with_fault_plan(plan)
                .evaluate()
                .unwrap_or_else(|e| panic!("{} crash seed {seed}: {e}", w.name));
            assert_confluent(
                w.name,
                &format!("batched crash, seed {seed}"),
                &baseline,
                &r,
            );
        }
    }
}

/// The same seeded plan injects the same faults on repeat runs: the
/// chaos adversary is deterministic end to end.
#[test]
fn fault_injection_is_deterministic() {
    let w = &CANONICAL[0];
    let a = engine_for(w)
        .with_fault_plan(FaultPlan::seeded(99))
        .evaluate()
        .unwrap();
    let b = engine_for(w)
        .with_fault_plan(FaultPlan::seeded(99))
        .evaluate()
        .unwrap();
    assert_eq!(a.stats, b.stats);
    assert_eq!(rows(&a), rows(&b));
}

/// Faults compose with adversarial random scheduling: the two sources
/// of nondeterminism the protocol must survive, together.
#[test]
fn chaos_composes_with_random_schedules() {
    for w in CANONICAL {
        let baseline = engine_for(w).evaluate().unwrap();
        for seed in 0..8u64 {
            let r = engine_for(w)
                .with_runtime(RuntimeKind::Sim(Schedule::Random(seed)))
                .with_fault_plan(FaultPlan::seeded(seed.wrapping_mul(31)))
                .evaluate()
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", w.name));
            assert_confluent(w.name, &format!("random schedule {seed}"), &baseline, &r);
        }
    }
}

/// The threaded runtime survives the same adversary: real threads, real
/// timing, same deterministic fault fates per link sequence number.
#[test]
fn threaded_runtime_survives_chaos() {
    for w in &CANONICAL[..3] {
        let baseline = engine_for(w).evaluate().unwrap();
        for seed in 0..4u64 {
            let plan = FaultPlan {
                // Tight horizons so retransmission happens in test time.
                retransmit_after: 20,
                max_delay: 4,
                ..FaultPlan::seeded(seed)
            };
            let r = engine_for(w)
                .with_runtime(RuntimeKind::Threads)
                .with_timeout(Duration::from_secs(30))
                .with_fault_plan(plan)
                .evaluate()
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", w.name));
            assert_confluent(w.name, &format!("threads, seed {seed}"), &baseline, &r);
        }
    }
}

/// Threaded crash recovery: a worker rebuilds its process from the
/// durable log inside its own thread and the run stays confluent.
#[test]
fn threaded_runtime_recovers_from_crashes() {
    let w = &CANONICAL[1];
    let baseline = engine_for(w).evaluate().unwrap();
    for node in [1usize, 2] {
        let plan = FaultPlan {
            retransmit_after: 20,
            ..FaultPlan::default()
        }
        .with_crash(node, 2);
        let r = engine_for(w)
            .with_runtime(RuntimeKind::Threads)
            .with_timeout(Duration::from_secs(30))
            .with_fault_plan(plan)
            .evaluate()
            .unwrap();
        assert_confluent(w.name, &format!("threads, crash {node}"), &baseline, &r);
    }
}

/// Threaded runtime with recovery off: typed `LinkDown`, and the run
/// aborts promptly instead of hanging until the timeout.
#[test]
fn threaded_crash_without_recovery_aborts_promptly() {
    let w = &CANONICAL[1];
    let started = std::time::Instant::now();
    let r = engine_for(w)
        .with_runtime(RuntimeKind::Threads)
        .with_timeout(Duration::from_secs(30))
        .with_fault_plan(
            FaultPlan {
                retransmit_after: 20,
                ..FaultPlan::default()
            }
            .with_crash(1, 1),
        )
        .with_recovery(false)
        .evaluate();
    match r {
        Err(mp_engine::EngineError::Runtime(mp_engine::runtime::RuntimeError::LinkDown {
            node,
        })) => assert_eq!(node, 1),
        other => panic!("expected LinkDown, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(25),
        "abort took the whole timeout budget"
    );
}

/// Extreme drop rate with a tiny retry budget: the transport gives up
/// with the typed `RetransmitExhausted` error — no hang, no panic.
#[test]
fn hopeless_link_exhausts_retransmissions() {
    let w = &CANONICAL[0];
    let plan = FaultPlan {
        drop: 1.0,
        max_retries: 4,
        ..FaultPlan::default()
    };
    match engine_for(w).with_fault_plan(plan).evaluate() {
        Err(mp_engine::EngineError::Runtime(
            mp_engine::runtime::RuntimeError::RetransmitExhausted { retries, .. },
        )) => assert!(retries > 4),
        other => panic!("expected RetransmitExhausted, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random fault plans × random schedules on the recursive canonical
    /// workloads (including nonlinear TC): answers always confluent with
    /// the fault-free FIFO run.
    #[test]
    fn random_plans_are_confluent(
        seed in 0u64..1_000_000,
        sched_seed in 0u64..1_000_000,
        drop_pct in 0u32..=10,
        dup_pct in 0u32..=10,
        delay_pct in 0u32..=25,
        corrupt_pct in 0u32..=5,
        workload in 0usize..5,
        crash_node in 0usize..8,
        crash_at in 1u64..6,
        crashes in 0u32..=2,
    ) {
        let w = &CANONICAL[workload];
        let baseline = engine_for(w).evaluate().unwrap();
        let mut plan = FaultPlan {
            seed,
            drop: drop_pct as f64 / 100.0,
            duplicate: dup_pct as f64 / 100.0,
            delay: delay_pct as f64 / 100.0,
            corrupt: corrupt_pct as f64 / 100.0,
            ..FaultPlan::default()
        };
        if crashes >= 1 {
            plan = plan.with_crash(crash_node % baseline.graph_nodes, crash_at);
        }
        if crashes == 2 {
            plan = plan.with_crash((crash_node + 3) % baseline.graph_nodes, crash_at + 2);
        }
        let r = engine_for(w)
            .with_runtime(RuntimeKind::Sim(Schedule::Random(sched_seed)))
            .with_fault_plan(plan)
            .evaluate()
            .unwrap();
        prop_assert_eq!(r.engine_ends, 1);
        prop_assert_eq!(r.post_end_answers, 0);
        prop_assert_eq!(rows(&r), rows(&baseline));
    }
}

/// Chaos × cancellation (ISSUE 8 acceptance sweep): a tight message
/// budget trips mid-run while the transport is busy with wire faults
/// AND log-replay crash recovery. Every seed must drain into the typed
/// `BudgetExceeded` error (or finish first under budget) — never hang —
/// with accounting for every node and partial answers drawn from the
/// true fixpoint. Crash seeds also exercise the Cancel-in-the-log
/// replay path: a reborn node re-learns its cancellation.
#[test]
fn chaos_cancel_sweep_32_seeds_drains_mid_recovery() {
    use mp_engine::runtime::RuntimeError;
    use mp_engine::QueryBudget;
    use std::collections::BTreeSet;
    for w in CANONICAL {
        let baseline = engine_for(w).evaluate().unwrap();
        let truth: BTreeSet<Tuple> = rows(&baseline).into_iter().collect();
        let nodes = baseline.graph_nodes;
        for seed in 0..32u64 {
            let plan =
                FaultPlan::seeded(seed).with_crash((seed as usize * 7 + 1) % nodes, 1 + seed % 3);
            let started = std::time::Instant::now();
            let result = engine_for(w)
                .with_fault_plan(plan)
                .with_budget(QueryBudget::new().with_max_messages(25))
                .evaluate();
            assert!(
                started.elapsed() < Duration::from_secs(30),
                "{} seed {seed}: cancel drain burned the whole deadline",
                w.name
            );
            match result {
                // The whole run fit under the budget.
                Ok(r) => assert_confluent(w.name, &format!("seed {seed}"), &baseline, &r),
                Err(mp_engine::EngineError::Runtime(RuntimeError::BudgetExceeded {
                    partial,
                    accounting,
                    cancel_waves,
                    ..
                })) => {
                    assert!(cancel_waves >= 1, "{} seed {seed}: no wave ran", w.name);
                    assert_eq!(
                        accounting.len(),
                        nodes,
                        "{} seed {seed}: accounting misses nodes",
                        w.name
                    );
                    for t in &partial {
                        assert!(
                            truth.contains(t),
                            "{} seed {seed}: partial answer {t} outside the fixpoint",
                            w.name
                        );
                    }
                }
                Err(e) => panic!("{} seed {seed}: unexpected error {e}", w.name),
            }
        }
    }
}
