//! Message-level protocol invariants, checked over full traces:
//!
//! 1. per arc, the relation request precedes every tuple request;
//! 2. after `EndOfRequests` on an arc, no further requests travel it;
//! 3. after `End` on an arc, no further answers or per-binding ends
//!    travel it;
//! 4. per-binding ends are unique and only ever answer a request that
//!    was actually made;
//! 5. when a stream ends, every binding requested on it has been ended
//!    (completeness of §3.2's "end" bookkeeping);
//! 6. nonrecursive programs never exchange protocol messages — the
//!    Fig 2 machinery only runs inside nontrivial strong components.

use mp_datalog::parser::parse_program;
use mp_datalog::Database;
use mp_engine::{Endpoint, Engine, Msg, Payload};
use mp_storage::{tuple, Tuple};
use std::collections::{HashMap, HashSet};

type Arc = (Endpoint, Endpoint);

/// Invariants 3–4 for one per-binding end, plain or inside a batch.
fn check_etr(
    i: usize,
    arc: &Arc,
    rev: &Arc,
    binding: &Tuple,
    end_seen: &HashSet<Arc>,
    requested: &HashMap<Arc, HashSet<Tuple>>,
    etrs: &mut HashMap<Arc, HashSet<Tuple>>,
) {
    assert!(
        !end_seen.contains(arc),
        "msg {i}: binding end after stream end on {arc:?}"
    );
    let asked = requested.get(rev).is_some_and(|s| s.contains(binding));
    assert!(
        asked,
        "msg {i}: end for a binding never requested: {binding:?} on {arc:?}"
    );
    let fresh = etrs.entry(*arc).or_default().insert(binding.clone());
    assert!(
        fresh,
        "msg {i}: duplicate binding end {binding:?} on {arc:?}"
    );
}

fn check_invariants(trace: &[Msg]) {
    let mut relreq_seen: HashSet<Arc> = HashSet::new();
    let mut eor_seen: HashSet<Arc> = HashSet::new();
    let mut end_seen: HashSet<Arc> = HashSet::new();
    let mut requested: HashMap<Arc, HashSet<Tuple>> = HashMap::new();
    let mut etrs: HashMap<Arc, HashSet<Tuple>> = HashMap::new();

    for (i, m) in trace.iter().enumerate() {
        let arc = (m.from, m.to);
        let rev = (m.to, m.from);
        match &m.payload {
            Payload::RelationRequest => {
                relreq_seen.insert(arc);
            }
            Payload::TupleRequest { binding } => {
                assert!(
                    relreq_seen.contains(&arc),
                    "msg {i}: tuple request before relation request on {arc:?}"
                );
                assert!(
                    !eor_seen.contains(&arc),
                    "msg {i}: tuple request after end-of-requests on {arc:?}"
                );
                requested.entry(arc).or_default().insert(binding.clone());
            }
            Payload::TupleRequestBatch { bindings } => {
                assert!(!eor_seen.contains(&arc), "msg {i}: batch after EOR");
                requested
                    .entry(arc)
                    .or_default()
                    .extend(bindings.iter().cloned());
            }
            Payload::EndOfRequests => {
                eor_seen.insert(arc);
            }
            Payload::Answer { .. } | Payload::AnswerBatch { .. } => {
                assert!(
                    !end_seen.contains(&arc),
                    "msg {i}: answer after stream end on {arc:?}"
                );
            }
            Payload::EndTupleRequest { binding } => {
                check_etr(i, &arc, &rev, binding, &end_seen, &requested, &mut etrs);
            }
            Payload::EndTupleRequestBatch { bindings } => {
                for binding in bindings {
                    check_etr(i, &arc, &rev, binding, &end_seen, &requested, &mut etrs);
                }
            }
            Payload::End => {
                end_seen.insert(arc);
                // Completeness: everything requested on the reverse arc
                // has been ended.
                let asked = requested.get(&rev).cloned().unwrap_or_default();
                let ended = etrs.get(&arc).cloned().unwrap_or_default();
                assert!(
                    asked.is_subset(&ended),
                    "stream end on {arc:?} with un-ended bindings: {:?}",
                    asked.difference(&ended).collect::<Vec<_>>()
                );
            }
            Payload::EndRequest { .. }
            | Payload::EndNegative { .. }
            | Payload::EndConfirmed { .. }
            | Payload::Reborn { .. }
            | Payload::SccFinished
            | Payload::Cancel { .. }
            | Payload::Shutdown => {}
        }
    }
}

fn trace_of(src: &str, edges: &[(&str, i64, i64)]) -> (Vec<Msg>, u64) {
    let program = parse_program(src).unwrap();
    let mut db = Database::new();
    for &(p, a, b) in edges {
        db.insert(p, tuple![a, b]).unwrap();
    }
    let r = Engine::new(program, db)
        .with_trace(true)
        .evaluate()
        .unwrap();
    (r.trace.unwrap(), r.stats.protocol_messages)
}

#[test]
fn invariants_on_nonrecursive_chain_of_rules() {
    // A five-level nonrecursive rule chain: the End/EndOfRequests cascade
    // closes every stream with zero protocol traffic.
    let (trace, protocol) = trace_of(
        "p1(X, Y) :- e(X, Y).
         p2(X, Y) :- p1(X, Y).
         p3(X, Z) :- p2(X, Y), e(Y, Z).
         p4(X, Y) :- p3(X, Y).
         p5(X, Y) :- p4(X, Y).
         ?- p5(1, Z).",
        &[("e", 1, 2), ("e", 2, 3), ("e", 3, 4)],
    );
    check_invariants(&trace);
    assert_eq!(protocol, 0, "no recursion, no probes");
    // Every stream that opened also closed.
    let opened: HashSet<Arc> = trace
        .iter()
        .filter(|m| matches!(m.payload, Payload::RelationRequest))
        .map(|m| (m.to, m.from)) // answers flow feeder → customer
        .collect();
    let ended: HashSet<Arc> = trace
        .iter()
        .filter(|m| matches!(m.payload, Payload::End))
        .map(|m| (m.from, m.to))
        .collect();
    assert_eq!(opened, ended, "all opened streams must end");
}

#[test]
fn invariants_on_recursive_cycle() {
    let (trace, protocol) = trace_of(
        "path(X, Y) :- edge(X, Y).
         path(X, Z) :- path(X, Y), edge(Y, Z).
         ?- path(0, Z).",
        &[("edge", 0, 1), ("edge", 1, 2), ("edge", 2, 0)],
    );
    check_invariants(&trace);
    assert!(protocol > 0, "recursion requires the probe protocol");
    assert!(trace
        .iter()
        .any(|m| matches!(m.payload, Payload::SccFinished)));
}

#[test]
fn invariants_on_nonlinear_and_mutual_recursion() {
    let (trace, _) = trace_of(
        "path(X, Y) :- edge(X, Y).
         path(X, Z) :- path(X, Y), path(Y, Z).
         ?- path(0, Z).",
        &[("edge", 0, 1), ("edge", 1, 2), ("edge", 2, 3)],
    );
    check_invariants(&trace);

    let (trace2, _) = trace_of(
        "odd(X, Y) :- edge(X, Y).
         odd(X, Y) :- edge(X, U), even(U, Y).
         even(X, Y) :- edge(X, U), odd(U, Y).
         ?- odd(0, Z).",
        &[("edge", 0, 1), ("edge", 1, 2), ("edge", 2, 3)],
    );
    check_invariants(&trace2);
}

#[test]
fn invariants_hold_under_random_schedules() {
    let program_src = "path(X, Y) :- edge(X, Y).
         path(X, Z) :- path(X, Y), edge(Y, Z).
         ?- path(0, Z).";
    let program = parse_program(program_src).unwrap();
    let mut db = Database::new();
    for (a, b) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
        db.insert("edge", tuple![a, b]).unwrap();
    }
    for seed in 0..10 {
        let r = Engine::new(program.clone(), db.clone())
            .with_trace(true)
            .with_runtime(mp_engine::RuntimeKind::Sim(mp_engine::Schedule::Random(
                seed,
            )))
            .evaluate()
            .unwrap();
        check_invariants(&r.trace.unwrap());
    }
}

#[test]
fn invariants_hold_with_batching() {
    let program = parse_program(
        "path(X, Y) :- edge(X, Y).
         path(X, Z) :- path(X, Y), edge(Y, Z).
         ?- path(0, Z).",
    )
    .unwrap();
    let mut db = Database::new();
    // Fan-out shape so real batches form.
    for i in 0..6i64 {
        for j in 0..4i64 {
            db.insert("edge", tuple![i, 10 + i * 4 + j]).unwrap();
            db.insert("edge", tuple![10 + i * 4 + j, (i + 1) % 6])
                .unwrap();
        }
    }
    let r = Engine::new(program, db)
        .with_trace(true)
        .with_batching(true)
        .evaluate()
        .unwrap();
    let trace = r.trace.unwrap();
    assert!(
        trace
            .iter()
            .any(|m| matches!(m.payload, Payload::TupleRequestBatch { .. })),
        "expected real request batches on a fan-out graph"
    );
    assert!(
        trace
            .iter()
            .any(|m| matches!(m.payload, Payload::AnswerBatch { .. })),
        "expected real answer batches on a fan-out graph"
    );
    check_invariants(&trace);
}
