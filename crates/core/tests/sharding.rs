//! Sharded-evaluation acceptance suite: K-way node replication with
//! hash routing must be *answer-invariant* — for every workload and
//! every K, the answer set and the batching-invariant logical counters
//! are bit-identical to the unsharded run, on both runtimes, under
//! random schedules, and under chaos with the recovery transport in the
//! loop (including a crash of an individual shard instance). The
//! two-level termination wave must keep the Thm 3.1 observables
//! (exactly one `End`, nothing after `End`) at every K.

use mp_datalog::parser::parse_program;
use mp_datalog::Database;
use mp_engine::node::{Network, ShardPlan};
use mp_engine::{Engine, FaultPlan, QueryResult, RuntimeKind, Schedule, Stats};
use mp_storage::{tuple, Tuple};
use std::time::Duration;

/// A canonical workload: name, program text, and edge facts.
struct Canonical {
    name: &'static str,
    src: &'static str,
    edges: &'static [(&'static str, i64, i64)],
}

/// Same canonical recursive workloads as the chaos suite: linear and
/// nonlinear transitive closure over chains and cycles, mutual
/// recursion, and the paper's P1. Every one has a request-keyed EDB
/// leaf, so sharding genuinely engages (asserted below, not assumed).
const CANONICAL: &[Canonical] = &[
    Canonical {
        name: "tc-chain",
        src: "path(X, Y) :- edge(X, Y).
              path(X, Z) :- path(X, Y), edge(Y, Z).
              ?- path(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 4),
            ("edge", 4, 5),
        ],
    },
    Canonical {
        name: "tc-cycle",
        src: "path(X, Y) :- edge(X, Y).
              path(X, Z) :- path(X, Y), edge(Y, Z).
              ?- path(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 0),
            ("edge", 2, 4),
        ],
    },
    Canonical {
        name: "tc-nonlinear",
        src: "path(X, Y) :- edge(X, Y).
              path(X, Z) :- path(X, Y), path(Y, Z).
              ?- path(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 4),
        ],
    },
    Canonical {
        name: "odd-even",
        src: "odd(X, Y) :- edge(X, Y).
              odd(X, Y) :- edge(X, U), even(U, Y).
              even(X, Y) :- edge(X, U), odd(U, Y).
              ?- odd(0, Z).",
        edges: &[
            ("edge", 0, 1),
            ("edge", 1, 2),
            ("edge", 2, 3),
            ("edge", 3, 4),
        ],
    },
    Canonical {
        name: "p1",
        src: "p(X, Y) :- q(X, Y).
              p(X, Z) :- r(X, W), p(W, Y), q(Y, Z).
              ?- p(3, Z).",
        edges: &[
            ("q", 1, 2),
            ("q", 2, 3),
            ("q", 3, 4),
            ("q", 4, 5),
            ("r", 3, 2),
            ("r", 2, 1),
        ],
    },
];

const KS: &[usize] = &[1, 2, 3, 4, 8];

fn engine_for(w: &Canonical) -> Engine {
    let program = parse_program(w.src).unwrap();
    let mut db = Database::new();
    for &(p, a, b) in w.edges {
        db.insert(p, tuple![a, b]).unwrap();
    }
    Engine::new(program, db)
}

fn rows(r: &QueryResult) -> Vec<Tuple> {
    r.answers.sorted_rows()
}

/// The counters sharding must not change: the batching-invariant logical
/// traffic plus every work/storage observable. Physical frame counts
/// (`relation_requests`, `stream_ends`, protocol traffic) legitimately
/// grow with K — one stream per shard arc — and are deliberately absent.
fn invariant_counters(s: &Stats) -> [u64; 9] {
    [
        s.logical_tuple_requests,
        s.logical_answers,
        s.logical_end_tuple_requests,
        s.derived_tuples,
        s.stored_tuples,
        s.goal_stored,
        s.join_probes,
        s.edb_lookups,
        s.answers,
    ]
}

fn assert_invariant(name: &str, ctx: &str, baseline: &QueryResult, sharded: &QueryResult) {
    assert_eq!(
        sharded.engine_ends, 1,
        "{name} [{ctx}]: expected exactly one End, got {}",
        sharded.engine_ends
    );
    assert_eq!(
        sharded.post_end_answers, 0,
        "{name} [{ctx}]: answers arrived after the final End"
    );
    assert_eq!(
        rows(sharded),
        rows(baseline),
        "{name} [{ctx}]: answers diverged from the unsharded run"
    );
    assert_eq!(
        invariant_counters(&sharded.stats),
        invariant_counters(&baseline.stats),
        "{name} [{ctx}]: a shard-invariant counter diverged"
    );
}

/// The acceptance sweep: every canonical workload × K ∈ {1,2,3,4,8} ×
/// (FIFO + 6 random schedules), all compared against the K=1 FIFO
/// simulator run. Answers and every invariant counter bit-identical.
#[test]
fn shard_invariance_sweep_across_k_and_schedules() {
    for w in CANONICAL {
        let baseline = engine_for(w).evaluate().unwrap();
        assert!(!rows(&baseline).is_empty(), "{}: empty baseline", w.name);
        let mut any_routed = false;
        for &k in KS {
            let fifo = engine_for(w)
                .with_shards(k)
                .evaluate()
                .unwrap_or_else(|e| panic!("{} K={k} fifo: {e}", w.name));
            assert_invariant(w.name, &format!("K={k} fifo"), &baseline, &fifo);
            if k == 1 {
                assert_eq!(
                    fifo.stats.shard_routed_frames, 0,
                    "{}: shard router engaged at K=1",
                    w.name
                );
            }
            any_routed |= fifo.stats.shard_routed_frames > 0;
            for seed in 0..6u64 {
                let r = engine_for(w)
                    .with_shards(k)
                    .with_runtime(RuntimeKind::Sim(Schedule::Random(seed)))
                    .evaluate()
                    .unwrap_or_else(|e| panic!("{} K={k} seed {seed}: {e}", w.name));
                assert_invariant(w.name, &format!("K={k} seed {seed}"), &baseline, &r);
            }
        }
        assert!(
            any_routed,
            "{}: no K ever routed a frame across a shard link — the sweep is vacuous",
            w.name
        );
    }
}

/// The worker-pool runtime at K=4 agrees with the K=1 simulator on
/// answers and invariant counters: hash routing is deterministic, so
/// both runtimes split traffic identically.
#[test]
fn threaded_runtime_agrees_at_k4() {
    for w in CANONICAL {
        let baseline = engine_for(w).evaluate().unwrap();
        let r = engine_for(w)
            .with_shards(4)
            .with_runtime(RuntimeKind::Threads)
            .with_budget(mp_engine::QueryBudget::new().with_deadline(Duration::from_secs(60)))
            .evaluate()
            .unwrap_or_else(|e| panic!("{} threads K=4: {e}", w.name));
        assert_invariant(w.name, "threads K=4", &baseline, &r);
    }
}

/// 16-seed chaos sweep at K=4: wire faults on every link (including the
/// shard links and the captain tree), answers and logical counters
/// bit-identical to the clean unsharded run, and the recorded trace
/// passes the full MP301–MP310 suite with `(node, shard)` instances as
/// actors.
#[test]
fn chaos_sweep_16_seeds_at_k4_is_trace_clean() {
    for w in CANONICAL {
        let baseline = engine_for(w).evaluate().unwrap();
        for seed in 0..16u64 {
            let r = engine_for(w)
                .with_shards(4)
                .with_fault_plan(FaultPlan::seeded(seed))
                .with_trace(true)
                .evaluate()
                .unwrap_or_else(|e| panic!("{} K=4 seed {seed}: {e}", w.name));
            assert_invariant(w.name, &format!("chaos K=4 seed {seed}"), &baseline, &r);
            assert!(
                r.stats.faults_injected() > 0,
                "{} seed {seed}: the plan never fired — sweep is vacuous",
                w.name
            );
            let events = r.events.as_ref().expect("tracing was enabled");
            let diags = mp_trace::check(events);
            assert!(
                diags.is_empty(),
                "{} K=4 seed {seed}: trace violations:\n{:?}",
                w.name,
                diags
            );
        }
    }
}

/// Find the physical id of a shard *sibling* (shard index > 0) in the
/// network the engine will compile for this workload at K shards.
fn a_shard_sibling(w: &Canonical, k: usize) -> Option<usize> {
    let engine = engine_for(w).with_shards(k);
    let graph = engine.compile().expect("compiles").graph;
    let parts = mp_analyze::plan::partition_keys(&graph);
    let plan = ShardPlan {
        shards: k,
        fan_out: mp_analyze::shard_fan_outs(&graph, &parts, k),
    };
    let network = Network::compile_sharded(&graph, engine.database(), &plan);
    assert_eq!(network.shards, k);
    network.shard_of.iter().position(|&(_, s)| s > 0)
}

/// Crash one shard *instance* (not the whole logical node) mid-run and
/// recover it by durable-log replay: the other K-1 instances keep their
/// state, the reborn sibling rejoins the captain's wave, and the run
/// stays answer- and counter-invariant.
#[test]
fn crash_replay_of_one_shard_instance() {
    for w in CANONICAL {
        let baseline = engine_for(w).evaluate().unwrap();
        let sibling =
            a_shard_sibling(w, 4).unwrap_or_else(|| panic!("{}: no node sharded at K=4", w.name));
        for seed in 0..4u64 {
            let r = engine_for(w)
                .with_shards(4)
                .with_fault_plan(FaultPlan::seeded(seed).with_crash(sibling, 2))
                .with_trace(true)
                .evaluate()
                .unwrap_or_else(|e| panic!("{} K=4 crash seed {seed}: {e}", w.name));
            assert_invariant(w.name, &format!("crash seed {seed}"), &baseline, &r);
            assert!(
                r.stats.crashes > 0,
                "{} seed {seed}: the scheduled crash never fired",
                w.name
            );
            let diags = mp_trace::check(r.events.as_ref().unwrap());
            assert!(
                diags.is_empty(),
                "{} K=4 crash seed {seed}: trace violations:\n{:?}",
                w.name,
                diags
            );
        }
    }
}

/// A broadcast-verdict node at K=4 must deliver each logical tuple
/// exactly once per peer even when the wire duplicates frames: the
/// transport dedups (visible as `dups_discarded > 0`), the logical
/// counters match the clean unsharded run, and the analysis reports
/// fan-out 1 for the broadcast node — broadcast output replicates to
/// peers, the node itself never splits.
#[test]
fn broadcast_node_delivers_exactly_once_per_peer_at_k4() {
    let src = "p(X, Y) :- s(X, Y).
               s(X, Y) :- a(X, Y), flag(Z).
               ?- p(1, Y).";
    let mk = || {
        let program = parse_program(src).unwrap();
        let mut db = Database::new();
        for (x, y) in [(1, 2), (1, 3), (2, 4)] {
            db.insert("a", tuple![x, y]).unwrap();
        }
        for z in [7, 8] {
            db.insert("flag", tuple![z]).unwrap();
        }
        Engine::new(program, db)
    };

    // The analysis side of the contract: the program has a broadcast
    // node, and its fan-out stays 1 at any K.
    let graph = mk().compile().unwrap().graph;
    let parts = mp_analyze::plan::partition_keys(&graph);
    let fan = mp_analyze::shard_fan_outs(&graph, &parts, 4);
    let broadcast: Vec<usize> = parts
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p, mp_analyze::PartitionKey::Broadcast))
        .map(|(i, _)| i)
        .collect();
    assert!(!broadcast.is_empty(), "fixture lost its broadcast node");
    for &i in &broadcast {
        assert_eq!(fan[i], 1, "broadcast nodes must not shard");
    }

    let baseline = mk().evaluate().unwrap();
    assert!(!rows(&baseline).is_empty());
    for seed in 0..8u64 {
        // Duplication-heavy plan: no drops or corruption, just copies
        // and reordering — the pure exactly-once stressor.
        let mut plan = FaultPlan::seeded(seed);
        plan.drop = 0.0;
        plan.duplicate = 0.35;
        plan.corrupt = 0.0;
        let r = mk()
            .with_shards(4)
            .with_fault_plan(plan)
            .with_trace(true)
            .evaluate()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_invariant("broadcast", &format!("seed {seed}"), &baseline, &r);
        assert!(
            r.stats.dups_discarded > 0,
            "seed {seed}: no duplicate ever reached a receiver — the test is vacuous"
        );
        let diags = mp_trace::check(r.events.as_ref().unwrap());
        assert!(diags.is_empty(), "seed {seed}: {diags:?}");
    }
}

/// Compile-layer shape: the physical network at K shards has one
/// instance per (node, shard) in `shard_of`, contiguous siblings, a
/// single root, and an EDB whose shard instances partition the rows of
/// the unsharded EDB exactly.
#[test]
fn compiled_shard_layout_is_sound() {
    let w = &CANONICAL[0];
    let engine = engine_for(w).with_shards(3);
    let graph = engine.compile().unwrap().graph;
    let parts = mp_analyze::plan::partition_keys(&graph);
    let fan_out = mp_analyze::shard_fan_outs(&graph, &parts, 3);
    let plan = ShardPlan {
        shards: 3,
        fan_out: fan_out.clone(),
    };
    let network = Network::compile_sharded(&graph, engine.database(), &plan);
    let unsharded = Network::compile(&graph, engine.database());

    // One physical process per planned instance, in (node, shard) order.
    assert_eq!(network.processes.len(), fan_out.iter().sum::<usize>());
    assert_eq!(network.shard_of.len(), network.processes.len());
    let mut expect = Vec::new();
    for (id, &k) in fan_out.iter().enumerate() {
        for s in 0..k {
            expect.push((id, s));
        }
    }
    assert_eq!(network.shard_of, expect);
    assert!(fan_out.iter().any(|&k| k > 1), "nothing sharded at K=3");

    // The root is single-instance and maps back to the graph root.
    assert_eq!(network.shard_of[network.root], (graph.root(), 0));

    // Each physical process carries its physical id.
    for (phys, p) in network.processes.iter().enumerate() {
        assert_eq!(p.common.id, phys);
    }

    // Sharded EDB instances partition the unsharded rows: same total
    // row count, no overlap (row counts per shard sum to the whole).
    use mp_engine::node::Behavior;
    for (id, &k) in fan_out.iter().enumerate() {
        if k <= 1 {
            continue;
        }
        let whole = match &unsharded.processes[id].behavior {
            Behavior::Edb { cfg } => cfg.filtered.len(),
            _ => continue,
        };
        let split: usize = network
            .shard_of
            .iter()
            .enumerate()
            .filter(|&(_, &(n, _))| n == id)
            .map(|(phys, _)| match &network.processes[phys].behavior {
                Behavior::Edb { cfg } => cfg.filtered.len(),
                other => panic!("shard instance of an EDB is {other:?}"),
            })
            .sum();
        assert_eq!(
            split, whole,
            "EDB node {id}: shards lost or duplicated rows"
        );
    }
}

/// MP108 fires exactly when sharding is requested but cannot help, and
/// is silent otherwise.
#[test]
fn mp108_warns_when_sharding_cannot_engage() {
    // No request-keyed node: the only goal is the free root.
    let src = "e(1). e(2). p(X) :- e(X). ?- p(X).";
    let program = parse_program(src).unwrap();
    let compiled = Engine::new(program.clone(), Database::new())
        .with_shards(4)
        .compile()
        .unwrap();
    let mp108: Vec<_> = compiled
        .warnings
        .iter()
        .filter(|d| d.code.as_str() == "MP108")
        .collect();
    assert_eq!(mp108.len(), 1, "expected exactly one MP108");
    assert!(!mp108[0].is_deny(), "MP108 is advice, not an error");
    assert!(mp108[0].message.contains("--shards 4"));

    // Silent at K=1 on the same program…
    let compiled = Engine::new(program, Database::new()).compile().unwrap();
    assert!(compiled.warnings.iter().all(|d| d.code.as_str() != "MP108"));

    // …and silent when a node really can split.
    let compiled = engine_for(&CANONICAL[0]).with_shards(4).compile().unwrap();
    assert!(compiled.warnings.iter().all(|d| d.code.as_str() != "MP108"));
}
