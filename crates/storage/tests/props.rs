//! Property tests for the storage substrate: index/scan equivalence,
//! dedup and ordering invariants, operator laws that the engine's
//! pipelined joins rely on.

use mp_storage::{ops, tuple, IndexedRelation, KeyIndex, Relation, Tuple, Value};
use proptest::prelude::*;

fn rel3(rows: &[(i64, i64, i64)]) -> Relation {
    let mut r = Relation::new(3);
    for &(a, b, c) in rows {
        r.insert(tuple![a, b, c]).unwrap();
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn index_lookup_equals_scan(
        rows in prop::collection::vec((0i64..5, 0i64..5, 0i64..5), 0..40),
        key in (0i64..5, 0i64..5),
        cols in prop::sample::subsequence(vec![0usize, 1, 2], 2),
    ) {
        let r = rel3(&rows);
        let idx = KeyIndex::build(&r, &cols).unwrap();
        let key_t: Tuple = vec![Value::from(key.0), Value::from(key.1)]
            .into_iter().collect();
        let via_index: Vec<&Tuple> = idx
            .probe_in(&r, key_t.values())
            .map(|i| &r.rows()[i as usize])
            .collect();
        let via_scan: Vec<&Tuple> =
            r.iter().filter(|t| t.matches_on(&cols, &key_t)).collect();
        prop_assert_eq!(via_index, via_scan);
    }

    #[test]
    fn incremental_index_equals_batch_index(
        rows in prop::collection::vec((0i64..5, 0i64..5, 0i64..5), 0..40),
        key in 0i64..5,
    ) {
        // Maintain the index while inserting vs building it afterwards.
        let mut inc = IndexedRelation::new(3);
        inc.ensure_index(&[1]).unwrap();
        for &(a, b, c) in &rows {
            inc.insert(tuple![a, b, c]).unwrap();
        }
        let batch = rel3(&rows);
        let idx = KeyIndex::build(&batch, &[1]).unwrap();
        let k = tuple![key];
        let mut from_inc: Vec<Tuple> =
            inc.lookup(&[1], &k).into_iter().cloned().collect();
        let mut from_batch: Vec<Tuple> = idx
            .probe_in(&batch, k.values())
            .map(|i| batch.rows()[i as usize].clone())
            .collect();
        from_inc.sort();
        from_batch.sort();
        prop_assert_eq!(from_inc, from_batch);
    }

    #[test]
    fn insertion_order_is_first_occurrence_order(
        rows in prop::collection::vec((0i64..4, 0i64..4), 0..30),
    ) {
        let mut r = Relation::new(2);
        let mut expected: Vec<Tuple> = Vec::new();
        for &(a, b) in &rows {
            let t = tuple![a, b];
            if r.insert(t.clone()).unwrap() {
                expected.push(t);
            }
        }
        prop_assert_eq!(r.rows(), expected.as_slice());
        prop_assert_eq!(r.len(), expected.len());
    }

    #[test]
    fn join_then_project_is_semijoin(
        xs in prop::collection::vec((0i64..5, 0i64..5), 0..25),
        ys in prop::collection::vec((0i64..5, 0i64..5), 0..25),
    ) {
        let mut l = Relation::new(2);
        for &(a, b) in &xs { l.insert(tuple![a, b]).unwrap(); }
        let mut r = Relation::new(2);
        for &(a, b) in &ys { r.insert(tuple![a, b]).unwrap(); }
        let j = ops::join(&l, &r, &[(0, 1)]).unwrap();
        let p = ops::project(&j, &[0, 1]).unwrap();
        let s = ops::semijoin(&l, &r, &[(0, 1)]).unwrap();
        prop_assert!(p.set_eq(&s));
    }

    #[test]
    fn cross_size_is_product(
        xs in prop::collection::vec(0i64..10, 0..12),
        ys in prop::collection::vec(0i64..10, 0..12),
    ) {
        let mut l = Relation::new(1);
        for &a in &xs { l.insert(tuple![a]).unwrap(); }
        let mut r = Relation::new(1);
        for &a in &ys { r.insert(tuple![a]).unwrap(); }
        let c = ops::cross(&l, &r);
        prop_assert_eq!(c.len(), l.len() * r.len());
    }

    #[test]
    fn distinct_column_matches_projection(
        rows in prop::collection::vec((0i64..5, 0i64..5), 0..30),
    ) {
        let mut ir = IndexedRelation::new(2);
        for &(a, b) in &rows { ir.insert(tuple![a, b]).unwrap(); }
        let direct: Vec<Value> = ir.distinct_column(0);
        let mut via_project: Vec<Value> = Vec::new();
        let mut base = Relation::new(2);
        for &(a, b) in &rows { base.insert(tuple![a, b]).unwrap(); }
        for t in ops::project(&base, &[0]).unwrap().iter() {
            via_project.push(t[0]);
        }
        prop_assert_eq!(direct, via_project);
    }
}
