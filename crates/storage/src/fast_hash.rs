//! A fast, deterministic hasher for the data plane.
//!
//! The hot path of evaluation is dominated by small hash operations:
//! every answer tuple is deduplicated at its rule node, inserted into a
//! node-local [`Relation`](crate::Relation), checked against per-stream
//! `ended`/`requested` sets, and probed through [`KeyIndex`] maps — all
//! keyed by interned words or short word slices. `std`'s default SipHash
//! is built to resist hash-flooding from untrusted keys; these keys are
//! the engine's own interned values, so the defence buys nothing and
//! costs a large constant per operation.
//!
//! [`FastHasher`] is an FxHash-style multiply-rotate mixer over native
//! words. It is **deterministic across processes** (no random seed),
//! which is a feature here: the simulated runtime's reproducibility
//! promise extends to hash-bucket iteration wherever a map's order could
//! leak into schedules. Do not use it on attacker-controlled keys.
//!
//! [`KeyIndex`]: crate::KeyIndex

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by trusted engine data, using [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` of trusted engine data, using [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

/// Multiplier from the golden ratio (same constant family as FxHash /
/// Fibonacci hashing); spreads consecutive interned ids across buckets.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fold one word into a running key hash — the same rotate/xor/multiply
/// step [`FastHasher`] applies per word, exposed as a pure function so
/// the columnar join kernels can hash a whole key column in one batched
/// pass per column (see `Relation::key_hashes`).
#[inline]
pub(crate) fn fold_key_word(h: u64, word: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// An FxHash-style streaming hasher: rotate, xor, multiply per word.
///
/// Word-sized writes (`u64`/`u32`/`u8`/`usize`) mix one word each, so
/// hashing a [`Tuple`](crate::Tuple) of interned values is a handful of
/// multiplies. Byte slices are consumed in little-endian word chunks.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length tag so "ab" and "ab\0" cannot collide trivially.
            tail[7] = rest.len() as u8;
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.mix(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of(f: impl Fn(&mut FastHasher)) -> u64 {
        let mut h = FastHasher::default();
        f(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_builders() {
        let b1: BuildHasherDefault<FastHasher> = Default::default();
        let b2: BuildHasherDefault<FastHasher> = Default::default();
        assert_eq!(b1.hash_one(12345u64), b2.hash_one(12345u64));
        assert_eq!(b1.hash_one("symbol"), b2.hash_one("symbol"));
    }

    #[test]
    fn order_sensitive_and_spreading() {
        let ab = hash_of(|h| {
            h.write_u64(1);
            h.write_u64(2);
        });
        let ba = hash_of(|h| {
            h.write_u64(2);
            h.write_u64(1);
        });
        assert_ne!(ab, ba, "word order must matter");
        // Consecutive small ids land in different buckets.
        let hashes: Vec<u64> = (0u64..64).map(|v| hash_of(|h| h.write_u64(v))).collect();
        let distinct: std::collections::HashSet<&u64> = hashes.iter().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn byte_tail_is_length_tagged() {
        assert_ne!(
            hash_of(|h| h.write(b"ab")),
            hash_of(|h| h.write(b"ab\0")),
            "trailing zero bytes must change the hash"
        );
    }

    #[test]
    fn fast_map_and_set_work() {
        let mut m: FastMap<crate::Tuple, u32> = FastMap::default();
        m.insert(crate::tuple![1, 2], 7);
        assert_eq!(m.get(&crate::tuple![1, 2]), Some(&7));
        let mut s: FastSet<u64> = FastSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3));
    }
}
