//! Process-wide string interner backing [`crate::Value`]'s symbol
//! variant.
//!
//! Every distinct symbolic constant is stored exactly once for the life
//! of the process and identified by a dense `u32` id. Interning makes
//! [`crate::Value`] a copyable tagged word: tuples flowing through the
//! message queues are memcpy'd instead of bumping `Arc` refcounts, and
//! equality/hashing of symbols reduces to integer comparison.
//!
//! The table only grows (ids are never recycled), which is exactly the
//! paper's setting: the Herbrand universe is the finite set of constants
//! appearing in the program and EDB (§1), so the working set is bounded
//! by the input. Strings are leaked on first interning so resolution
//! returns `&'static str` without holding any lock.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// The global symbol table. `OnceLock` gives us lazy, dependency-free
/// initialization; the `RwLock` makes the read path (resolution and
/// already-interned lookups) contention-free across runtime threads.
struct Table {
    ids: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn table() -> &'static RwLock<Table> {
    static TABLE: OnceLock<RwLock<Table>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Table {
            ids: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

/// Intern a string, returning its stable id. The common case (symbol
/// already present) takes only the read lock.
pub(crate) fn intern(s: &str) -> u32 {
    if let Ok(t) = table().read() {
        if let Some(&id) = t.ids.get(s) {
            return id;
        }
    }
    let mut t = table().write().unwrap_or_else(|e| e.into_inner());
    if let Some(&id) = t.ids.get(s) {
        return id;
    }
    // First sighting: leak one copy for the life of the process. The
    // leak is bounded by the set of distinct constants in the input.
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let id = u32::try_from(t.strings.len()).expect("interner exhausted u32 id space");
    t.strings.push(leaked);
    t.ids.insert(leaked, id);
    id
}

/// Resolve an id minted by [`intern`] back to its string. The returned
/// reference is `'static`, so no lock is held by the caller.
pub(crate) fn resolve(id: u32) -> &'static str {
    let t = table().read().unwrap_or_else(|e| e.into_inner());
    t.strings[id as usize]
}

/// Number of distinct symbols interned so far (process-wide).
pub fn symbol_count() -> usize {
    table()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .strings
        .len()
}

/// Approximate bytes held by the interner arena (process-wide): the
/// leaked string payloads plus per-entry table overhead (one `Vec` slot,
/// one `HashMap` entry). Used by the runtime memory-budget accounting;
/// an estimate, not an allocator census.
pub fn symbol_bytes() -> usize {
    let t = table().read().unwrap_or_else(|e| e.into_inner());
    let payload: usize = t.strings.iter().map(|s| s.len()).sum();
    // &'static str in the Vec (16) + HashMap entry (&str key + u32 value,
    // bucket overhead) ≈ 32.
    payload + t.strings.len() * 48
}

/// Pre-reserve capacity for `additional` more distinct symbols, so bulk
/// EDB loads do not rehash the table repeatedly. Harmless to over- or
/// under-estimate.
pub fn reserve_symbols(additional: usize) {
    let mut t = table().write().unwrap_or_else(|e| e.into_inner());
    t.ids.reserve(additional);
    t.strings.reserve(additional);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("interner-test-alpha");
        let b = intern("interner-test-alpha");
        assert_eq!(a, b);
        assert_eq!(resolve(a), "interner-test-alpha");
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        let a = intern("interner-test-x");
        let b = intern("interner-test-y");
        assert_ne!(a, b);
        assert_eq!(resolve(a), "interner-test-x");
        assert_eq!(resolve(b), "interner-test-y");
    }

    #[test]
    fn symbol_bytes_grows_with_interning() {
        let before = symbol_bytes();
        intern("interner-test-bytes-probe");
        assert!(symbol_bytes() > before);
    }

    #[test]
    fn count_and_reserve_do_not_disturb_ids() {
        let a = intern("interner-test-stable");
        reserve_symbols(64);
        assert!(symbol_count() >= 1);
        assert_eq!(intern("interner-test-stable"), a);
    }
}
