//! Fixed-arity rows.

use crate::Value;
use std::borrow::Borrow;
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// An immutable row of [`Value`]s.
///
/// Tuples are the unit shipped in the framework's `tuple` and
/// `tuple request` messages (§3.1 of the paper). The data plane clones
/// each one many times — into dedup sets, node-local relations, send
/// buffers, and message payloads — so the slice is behind an [`Arc`]:
/// a clone is a refcount bump, never an allocation. Values are `Copy`
/// interned words, so sharing is safe across threads.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Create a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(Arc::from(values))
    }

    /// The empty tuple — used as the unit binding for streams whose
    /// adornment has no `d` arguments ("compute everything").
    pub fn unit() -> Self {
        Tuple(Arc::new([]))
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// True for the zero-arity tuple.
    pub fn is_unit(&self) -> bool {
        self.0.is_empty()
    }

    /// The underlying values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Project the tuple onto the given columns (in the given order).
    ///
    /// # Panics
    /// Panics if any column index is out of bounds; callers validate
    /// column lists against schemas before evaluation begins.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple(cols.iter().map(|&c| self.0[c]).collect())
    }

    /// Concatenate two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        Tuple(self.0.iter().chain(other.0.iter()).cloned().collect())
    }

    /// True if the tuple matches `key` on the given columns.
    pub fn matches_on(&self, cols: &[usize], key: &Tuple) -> bool {
        debug_assert_eq!(cols.len(), key.arity());
        cols.iter()
            .zip(key.values())
            .all(|(&c, v)| self.0.get(c) == Some(v))
    }
}

/// Tuples hash and compare exactly like their value slices (the derived
/// impls delegate to `[Value]`), so hash-map keys of type [`Tuple`] can
/// be probed with a borrowed `&[Value]` — no key allocation per probe.
impl Borrow<[Value]> for Tuple {
    fn borrow(&self) -> &[Value] {
        &self.0
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(values: [Value; N]) -> Self {
        Tuple(Arc::from(values))
    }
}

/// Convenience constructor: `tuple![1, "a", 3]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_arity() {
        let t = tuple![1, "a"];
        assert_eq!(t.arity(), 2);
        assert_eq!(t[0], Value::int(1));
        assert_eq!(t[1], Value::str("a"));
        assert!(!t.is_unit());
        assert!(Tuple::unit().is_unit());
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let t = tuple![10, 20, 30];
        assert_eq!(t.project(&[2, 0]), tuple![30, 10]);
        assert_eq!(t.project(&[1, 1]), tuple![20, 20]);
        assert_eq!(t.project(&[]), Tuple::unit());
    }

    #[test]
    fn concat_appends() {
        assert_eq!(tuple![1].concat(&tuple!["x", 2]), tuple![1, "x", 2]);
        assert_eq!(Tuple::unit().concat(&tuple![5]), tuple![5]);
    }

    #[test]
    fn matches_on_columns() {
        let t = tuple![1, 2, 3];
        assert!(t.matches_on(&[0, 2], &tuple![1, 3]));
        assert!(!t.matches_on(&[0, 2], &tuple![1, 2]));
        assert!(t.matches_on(&[], &Tuple::unit()));
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", tuple![1, "a"]), "(1, a)");
        assert_eq!(format!("{}", Tuple::unit()), "()");
    }
}
