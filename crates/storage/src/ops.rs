//! Relational algebra operators.
//!
//! "Rule nodes combine their subgoal relations using join, select, and
//! project" (§2.2 of the paper); class-`d` arguments "function as a
//! semi-join operand" (§1.2). These operators are the batch forms; the
//! engine's pipelined per-tuple forms live in `mp-engine` and are tested
//! against these as oracles.
//!
//! All operators preserve determinism: outputs are produced in the
//! insertion order induced by scanning the left operand.

use crate::{KeyIndex, Relation, StorageError, Tuple, Value};

/// Select rows where column `col` equals `value`.
pub fn select_eq(rel: &Relation, col: usize, value: &Value) -> Result<Relation, StorageError> {
    if col >= rel.arity() && !(rel.arity() == 0 && col == 0) {
        return Err(StorageError::ColumnOutOfBounds {
            column: col,
            arity: rel.arity(),
        });
    }
    let mut out = Relation::new(rel.arity());
    for t in rel.iter() {
        if &t[col] == value {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// Select rows matching `key` on `cols`.
pub fn select_on(rel: &Relation, cols: &[usize], key: &Tuple) -> Result<Relation, StorageError> {
    for &c in cols {
        if c >= rel.arity() {
            return Err(StorageError::ColumnOutOfBounds {
                column: c,
                arity: rel.arity(),
            });
        }
    }
    let mut out = Relation::new(rel.arity());
    for t in rel.iter() {
        if t.matches_on(cols, key) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// Select rows satisfying an arbitrary predicate.
pub fn select_where(rel: &Relation, pred: impl Fn(&Tuple) -> bool) -> Relation {
    let mut out = Relation::new(rel.arity());
    for t in rel.iter() {
        if pred(t) {
            out.insert(t.clone()).expect("same arity");
        }
    }
    out
}

/// Project onto `cols` (deduplicating).
pub fn project(rel: &Relation, cols: &[usize]) -> Result<Relation, StorageError> {
    for &c in cols {
        if c >= rel.arity() {
            return Err(StorageError::ColumnOutOfBounds {
                column: c,
                arity: rel.arity(),
            });
        }
    }
    let mut out = Relation::new(cols.len());
    for t in rel.iter() {
        out.insert(t.project(cols))?;
    }
    Ok(out)
}

/// Equi-join on column pairs `(left_col, right_col)`.
///
/// Output schema is the concatenation of the left and right schemas (the
/// right join columns are retained; callers project afterwards). Uses a
/// hash index on the right operand.
pub fn join(
    left: &Relation,
    right: &Relation,
    on: &[(usize, usize)],
) -> Result<Relation, StorageError> {
    let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    for &c in &lcols {
        if c >= left.arity() {
            return Err(StorageError::ColumnOutOfBounds {
                column: c,
                arity: left.arity(),
            });
        }
    }
    let idx = KeyIndex::build(right, &rcols)?;
    let mut out = Relation::new(left.arity() + right.arity());
    for lt in left.iter() {
        let key = lt.project(&lcols);
        for &rid in idx.get(&key) {
            let rt = &right.rows()[rid as usize];
            out.insert(lt.concat(rt))?;
        }
    }
    Ok(out)
}

/// Semi-join: rows of `left` that match at least one row of `right` on the
/// column pairs.
pub fn semijoin(
    left: &Relation,
    right: &Relation,
    on: &[(usize, usize)],
) -> Result<Relation, StorageError> {
    let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    for &c in &lcols {
        if c >= left.arity() {
            return Err(StorageError::ColumnOutOfBounds {
                column: c,
                arity: left.arity(),
            });
        }
    }
    let idx = KeyIndex::build(right, &rcols)?;
    let mut out = Relation::new(left.arity());
    for lt in left.iter() {
        if !idx.get(&lt.project(&lcols)).is_empty() {
            out.insert(lt.clone())?;
        }
    }
    Ok(out)
}

/// Anti-join: rows of `left` with no match in `right`.
pub fn antijoin(
    left: &Relation,
    right: &Relation,
    on: &[(usize, usize)],
) -> Result<Relation, StorageError> {
    let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    for &c in &lcols {
        if c >= left.arity() {
            return Err(StorageError::ColumnOutOfBounds {
                column: c,
                arity: left.arity(),
            });
        }
    }
    let idx = KeyIndex::build(right, &rcols)?;
    let mut out = Relation::new(left.arity());
    for lt in left.iter() {
        if idx.get(&lt.project(&lcols)).is_empty() {
            out.insert(lt.clone())?;
        }
    }
    Ok(out)
}

/// Union (deduplicating, left rows first).
pub fn union(left: &Relation, right: &Relation) -> Result<Relation, StorageError> {
    if left.arity() != right.arity() {
        return Err(StorageError::ArityMismatch {
            expected: left.arity(),
            got: right.arity(),
        });
    }
    let mut out = Relation::new(left.arity());
    for t in left.iter().chain(right.iter()) {
        out.insert(t.clone())?;
    }
    Ok(out)
}

/// Set difference `left − right`.
pub fn difference(left: &Relation, right: &Relation) -> Result<Relation, StorageError> {
    if left.arity() != right.arity() {
        return Err(StorageError::ArityMismatch {
            expected: left.arity(),
            got: right.arity(),
        });
    }
    let mut out = Relation::new(left.arity());
    for t in left.iter() {
        if !right.contains(t) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// Cartesian product.
pub fn cross(left: &Relation, right: &Relation) -> Relation {
    let mut out = Relation::new(left.arity() + right.arity());
    for lt in left.iter() {
        for rt in right.iter() {
            out.insert(lt.concat(rt)).expect("same arity");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn r(rows: Vec<Tuple>) -> Relation {
        rows.into_iter().collect()
    }

    #[test]
    fn select_eq_filters() {
        let rel = r(vec![tuple![1, 10], tuple![2, 20], tuple![1, 11]]);
        let out = select_eq(&rel, 0, &Value::int(1)).unwrap();
        assert_eq!(out.rows(), &[tuple![1, 10], tuple![1, 11]]);
        assert!(select_eq(&rel, 7, &Value::int(1)).is_err());
    }

    #[test]
    fn select_on_multi_column() {
        let rel = r(vec![tuple![1, 10, 5], tuple![1, 11, 5], tuple![1, 10, 6]]);
        let out = select_on(&rel, &[0, 2], &tuple![1, 5]).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn select_where_predicate() {
        let rel = r(vec![tuple![1], tuple![2], tuple![3]]);
        let out = select_where(&rel, |t| t[0].as_int().unwrap() > 1);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn project_dedups() {
        let rel = r(vec![tuple![1, 10], tuple![1, 11], tuple![2, 20]]);
        let out = project(&rel, &[0]).unwrap();
        assert_eq!(out.rows(), &[tuple![1], tuple![2]]);
        assert!(project(&rel, &[9]).is_err());
    }

    #[test]
    fn join_basic() {
        let l = r(vec![tuple![1, 2], tuple![2, 3]]);
        let rr = r(vec![tuple![2, 30], tuple![3, 40], tuple![3, 41]]);
        let out = join(&l, &rr, &[(1, 0)]).unwrap();
        assert_eq!(
            out.sorted_rows(),
            vec![
                tuple![1, 2, 2, 30],
                tuple![2, 3, 3, 40],
                tuple![2, 3, 3, 41]
            ]
        );
    }

    #[test]
    fn join_on_no_columns_is_cross() {
        let l = r(vec![tuple![1], tuple![2]]);
        let rr = r(vec![tuple![10], tuple![20]]);
        let out = join(&l, &rr, &[]).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out, cross(&l, &rr));
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let l = r(vec![tuple![1, 2], tuple![2, 3], tuple![4, 5]]);
        let rr = r(vec![tuple![2], tuple![5]]);
        let semi = semijoin(&l, &rr, &[(1, 0)]).unwrap();
        let anti = antijoin(&l, &rr, &[(1, 0)]).unwrap();
        assert_eq!(semi.rows(), &[tuple![1, 2], tuple![4, 5]]);
        assert_eq!(anti.rows(), &[tuple![2, 3]]);
        assert_eq!(union(&semi, &anti).unwrap(), l);
    }

    #[test]
    fn union_requires_same_arity() {
        let a = r(vec![tuple![1]]);
        let b = r(vec![tuple![1, 2]]);
        assert!(union(&a, &b).is_err());
    }

    #[test]
    fn difference_removes() {
        let a = r(vec![tuple![1], tuple![2], tuple![3]]);
        let b = r(vec![tuple![2]]);
        assert_eq!(difference(&a, &b).unwrap().rows(), &[tuple![1], tuple![3]]);
    }
}
