//! Relational algebra operators over columnar kernels.
//!
//! "Rule nodes combine their subgoal relations using join, select, and
//! project" (§2.2 of the paper); class-`d` arguments "function as a
//! semi-join operand" (§1.2). These operators are the batch forms; the
//! engine's pipelined per-tuple forms live in `mp-engine` and are tested
//! against these as oracles.
//!
//! Batch and pipelined forms share one probe kernel: hash-bucket
//! candidates from a [`KeyIndex`] verified against the owning relation's
//! column mirror — the same entry point ([`KeyIndex::probe_in`] /
//! [`Relation::probe`]) the engine's rule nodes call per tuple — reusing
//! a [`Relation::ensure_index`]-prepared index when the operand has one
//! and building a transient index otherwise. The batch forms here add
//! the columnar refinement: probe-key hashes for the whole left operand
//! are computed in batched column-at-a-time passes
//! (`Relation::key_hashes`), and selection scans run as tight loops over
//! [`Relation::column`] slices. Nothing nested-loops over the right
//! operand and nothing dereferences a row `Arc` to decide a mismatch.
//!
//! All operators preserve determinism: outputs are produced in the
//! insertion order induced by scanning the left operand.

use crate::{FastMap, FastSet, KeyIndex, Relation, StorageError, Tuple, Value};
use std::borrow::Cow;

/// An aggregate fold function over one column (set semantics: the fold
/// ranges over the *distinct* aggregated values per group, matching the
/// duplicate-free data plane).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AggFunc {
    /// Number of distinct aggregated values per group.
    Count,
    /// Sum of the distinct integer values per group.
    Sum,
    /// Minimum integer value per group.
    Min,
    /// Maximum integer value per group.
    Max,
}

impl AggFunc {
    /// The surface-syntax keyword (`count<X>`, …).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Parse a surface keyword.
    pub fn parse(s: &str) -> Option<AggFunc> {
        match s {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors from the aggregate kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggError {
    /// `sum`/`min`/`max` met a non-integer value (symbol ordering is
    /// interner-id order, which is not a semantic order, so only `count`
    /// accepts symbols).
    NonInt {
        /// The fold that rejected the value.
        func: AggFunc,
        /// The offending value.
        value: Value,
    },
    /// A `sum` overflowed the 64-bit integer domain.
    Overflow,
    /// Column bookkeeping failed (out-of-bounds group or aggregate
    /// column).
    Storage(StorageError),
}

impl std::fmt::Display for AggError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggError::NonInt { func, value } => {
                write!(f, "{func} aggregate over non-integer value {value}")
            }
            AggError::Overflow => write!(f, "sum aggregate overflowed i64"),
            AggError::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AggError {}

impl From<StorageError> for AggError {
    fn from(e: StorageError) -> Self {
        AggError::Storage(e)
    }
}

/// The probe side of a join-like operator: the operand's own prepared
/// index on exactly `cols` when present, else a transient one built for
/// this call.
fn index_on<'a>(rel: &'a Relation, cols: &[usize]) -> Result<Cow<'a, KeyIndex>, StorageError> {
    match rel.index_for(cols) {
        Some(idx) => Ok(Cow::Borrowed(idx)),
        None => Ok(Cow::Owned(KeyIndex::build(rel, cols)?)),
    }
}

fn check_cols(rel: &Relation, cols: &[usize]) -> Result<(), StorageError> {
    for &c in cols {
        if c >= rel.arity() {
            return Err(StorageError::ColumnOutOfBounds {
                column: c,
                arity: rel.arity(),
            });
        }
    }
    Ok(())
}

/// Select rows where column `col` equals `value`: an index probe when
/// one is prepared, else one tight pass over the column slice.
pub fn select_eq(rel: &Relation, col: usize, value: &Value) -> Result<Relation, StorageError> {
    check_cols(rel, &[col])?;
    let mut out = Relation::new(rel.arity());
    if let Some(idx) = rel.index_for(&[col]) {
        for id in idx.probe_in(rel, std::slice::from_ref(value)) {
            out.insert(rel.rows()[id as usize].clone())?;
        }
    } else {
        let rows = rel.rows();
        for (i, v) in rel.column(col).iter().enumerate() {
            if v == value {
                out.insert(rows[i].clone())?;
            }
        }
    }
    Ok(out)
}

/// Select rows matching `key` on `cols`.
pub fn select_on(rel: &Relation, cols: &[usize], key: &Tuple) -> Result<Relation, StorageError> {
    check_cols(rel, cols)?;
    let mut out = Relation::new(rel.arity());
    for t in rel.probe(cols, key.values()) {
        out.insert(t.clone())?;
    }
    Ok(out)
}

/// Select rows satisfying an arbitrary predicate.
pub fn select_where(rel: &Relation, pred: impl Fn(&Tuple) -> bool) -> Relation {
    let mut out = Relation::new(rel.arity());
    for t in rel.iter() {
        if pred(t) {
            out.insert(t.clone()).expect("same arity");
        }
    }
    out
}

/// Project onto `cols` (deduplicating).
pub fn project(rel: &Relation, cols: &[usize]) -> Result<Relation, StorageError> {
    check_cols(rel, cols)?;
    let mut out = Relation::new(cols.len());
    for t in rel.iter() {
        out.insert(t.project(cols))?;
    }
    Ok(out)
}

/// One left row's verified matches in the right operand, driven by the
/// batched hash column. Gathers the probe key from the left's column
/// slices only when the bucket is non-empty (a hash miss touches no row
/// data at all), then verifies each candidate against the right's column
/// mirror.
fn probe_matches(
    idx: &KeyIndex,
    right: &Relation,
    lslices: &[&[Value]],
    i: usize,
    hash: u64,
    key: &mut Vec<Value>,
    mut on_match: impl FnMut(u32) -> Result<(), StorageError>,
) -> Result<bool, StorageError> {
    let cands = idx.candidates(hash);
    if cands.is_empty() {
        return Ok(false);
    }
    key.clear();
    key.extend(lslices.iter().map(|s| s[i]));
    let mut any = false;
    for &rid in cands {
        if idx.verify(right, rid, key) {
            any = true;
            on_match(rid)?;
        }
    }
    Ok(any)
}

/// Equi-join on column pairs `(left_col, right_col)`.
///
/// Output schema is the concatenation of the left and right schemas (the
/// right join columns are retained; callers project afterwards). Probes a
/// hash index on the right operand — the right's own prepared index when
/// it has one on exactly the join columns — with the probe hashes for
/// every left row computed up front in batched per-column passes.
pub fn join(
    left: &Relation,
    right: &Relation,
    on: &[(usize, usize)],
) -> Result<Relation, StorageError> {
    let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    check_cols(left, &lcols)?;
    let idx = index_on(right, &rcols)?;
    let mut out = Relation::new(left.arity() + right.arity());
    let hashes = left.key_hashes(&lcols);
    let lslices: Vec<&[Value]> = lcols.iter().map(|&c| left.column(c)).collect();
    let (lrows, rrows) = (left.rows(), right.rows());
    let mut key: Vec<Value> = Vec::with_capacity(lcols.len());
    for (i, &h) in hashes.iter().enumerate() {
        probe_matches(&idx, right, &lslices, i, h, &mut key, |rid| {
            out.insert(lrows[i].concat(&rrows[rid as usize]))
                .map(|_| ())
        })?;
    }
    Ok(out)
}

/// Semi-join: rows of `left` that match at least one row of `right` on the
/// column pairs. Same batched-hash probe as [`join`], but a left row is
/// emitted once on its first verified match.
pub fn semijoin(
    left: &Relation,
    right: &Relation,
    on: &[(usize, usize)],
) -> Result<Relation, StorageError> {
    let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    check_cols(left, &lcols)?;
    let idx = index_on(right, &rcols)?;
    let mut out = Relation::new(left.arity());
    let hashes = left.key_hashes(&lcols);
    let lslices: Vec<&[Value]> = lcols.iter().map(|&c| left.column(c)).collect();
    let lrows = left.rows();
    let mut key: Vec<Value> = Vec::with_capacity(lcols.len());
    for (i, &h) in hashes.iter().enumerate() {
        if probe_matches(&idx, right, &lslices, i, h, &mut key, |_| Ok(()))? {
            out.insert(lrows[i].clone())?;
        }
    }
    Ok(out)
}

/// Anti-join: rows of `left` with no match in `right`.
pub fn antijoin(
    left: &Relation,
    right: &Relation,
    on: &[(usize, usize)],
) -> Result<Relation, StorageError> {
    let lcols: Vec<usize> = on.iter().map(|&(l, _)| l).collect();
    let rcols: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
    check_cols(left, &lcols)?;
    let idx = index_on(right, &rcols)?;
    let mut out = Relation::new(left.arity());
    let hashes = left.key_hashes(&lcols);
    let lslices: Vec<&[Value]> = lcols.iter().map(|&c| left.column(c)).collect();
    let lrows = left.rows();
    let mut key: Vec<Value> = Vec::with_capacity(lcols.len());
    for (i, &h) in hashes.iter().enumerate() {
        if !probe_matches(&idx, right, &lslices, i, h, &mut key, |_| Ok(()))? {
            out.insert(lrows[i].clone())?;
        }
    }
    Ok(out)
}

/// Union (deduplicating, left rows first).
pub fn union(left: &Relation, right: &Relation) -> Result<Relation, StorageError> {
    if left.arity() != right.arity() {
        return Err(StorageError::ArityMismatch {
            expected: left.arity(),
            got: right.arity(),
        });
    }
    let mut out = Relation::new(left.arity());
    for t in left.iter().chain(right.iter()) {
        out.insert(t.clone())?;
    }
    Ok(out)
}

/// Set difference `left − right`.
pub fn difference(left: &Relation, right: &Relation) -> Result<Relation, StorageError> {
    if left.arity() != right.arity() {
        return Err(StorageError::ArityMismatch {
            expected: left.arity(),
            got: right.arity(),
        });
    }
    let mut out = Relation::new(left.arity());
    for t in left.iter() {
        if !right.contains(t) {
            out.insert(t.clone())?;
        }
    }
    Ok(out)
}

/// Group-and-fold: group `rel` by `group` columns and fold the distinct
/// values of column `agg_col` in each group with `func`. Output schema is
/// the group columns followed by one aggregate column; groups appear in
/// the insertion order of their first contributing row (deterministic,
/// like every other operator here). Empty input yields the empty relation
/// — in stratified Datalog a group only exists once some body tuple
/// witnesses it.
pub fn aggregate(
    rel: &Relation,
    group: &[usize],
    agg_col: usize,
    func: AggFunc,
) -> Result<Relation, AggError> {
    check_cols(rel, group)?;
    check_cols(rel, &[agg_col])?;
    // Group order = first-occurrence order; per-group distinct values.
    let mut order: Vec<Tuple> = Vec::new();
    let mut seen: FastMap<Tuple, FastSet<Value>> = FastMap::default();
    for t in rel.iter() {
        let key = t.project(group);
        let set = seen.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            FastSet::default()
        });
        set.insert(t[agg_col]);
    }
    let mut out = Relation::new(group.len() + 1);
    for key in order {
        let vals = &seen[&key];
        let folded = match func {
            AggFunc::Count => Value::int(vals.len() as i64),
            AggFunc::Sum => {
                let mut acc = 0i64;
                for v in vals.iter() {
                    let i = v.as_int().ok_or(AggError::NonInt { func, value: *v })?;
                    acc = acc.checked_add(i).ok_or(AggError::Overflow)?;
                }
                Value::int(acc)
            }
            AggFunc::Min | AggFunc::Max => {
                let mut acc: Option<i64> = None;
                for v in vals.iter() {
                    let i = v.as_int().ok_or(AggError::NonInt { func, value: *v })?;
                    acc = Some(match acc {
                        None => i,
                        Some(a) if func == AggFunc::Min => a.min(i),
                        Some(a) => a.max(i),
                    });
                }
                // A group exists only because at least one row fed it.
                Value::int(acc.unwrap_or(0))
            }
        };
        let mut row: Vec<Value> = key.values().to_vec();
        row.push(folded);
        out.insert(Tuple::new(row))?;
    }
    Ok(out)
}

/// Cartesian product.
pub fn cross(left: &Relation, right: &Relation) -> Relation {
    let mut out = Relation::new(left.arity() + right.arity());
    for lt in left.iter() {
        for rt in right.iter() {
            out.insert(lt.concat(rt)).expect("same arity");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn r(rows: Vec<Tuple>) -> Relation {
        Relation::from_tuples(rows.first().map_or(0, Tuple::arity), rows)
            .expect("test rows share an arity")
    }

    #[test]
    fn select_eq_filters() {
        let rel = r(vec![tuple![1, 10], tuple![2, 20], tuple![1, 11]]);
        let out = select_eq(&rel, 0, &Value::int(1)).unwrap();
        assert_eq!(out.rows(), &[tuple![1, 10], tuple![1, 11]]);
        assert!(select_eq(&rel, 7, &Value::int(1)).is_err());
    }

    #[test]
    fn select_eq_uses_prepared_index() {
        let mut rel = r(vec![tuple![1, 10], tuple![2, 20], tuple![1, 11]]);
        rel.ensure_index(&[0]).unwrap();
        let out = select_eq(&rel, 0, &Value::int(1)).unwrap();
        assert_eq!(out.rows(), &[tuple![1, 10], tuple![1, 11]]);
    }

    #[test]
    fn select_eq_rejects_column_zero_on_zero_arity() {
        // Regression: the old carve-out accepted column 0 on a zero-arity
        // relation and indexed out of bounds on its first row.
        let mut rel = Relation::new(0);
        rel.insert(Tuple::unit()).unwrap();
        assert_eq!(
            select_eq(&rel, 0, &Value::int(1)),
            Err(StorageError::ColumnOutOfBounds {
                column: 0,
                arity: 0
            })
        );
    }

    #[test]
    fn select_on_multi_column() {
        let rel = r(vec![tuple![1, 10, 5], tuple![1, 11, 5], tuple![1, 10, 6]]);
        let out = select_on(&rel, &[0, 2], &tuple![1, 5]).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn select_where_predicate() {
        let rel = r(vec![tuple![1], tuple![2], tuple![3]]);
        let out = select_where(&rel, |t| t[0].as_int().unwrap() > 1);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn project_dedups() {
        let rel = r(vec![tuple![1, 10], tuple![1, 11], tuple![2, 20]]);
        let out = project(&rel, &[0]).unwrap();
        assert_eq!(out.rows(), &[tuple![1], tuple![2]]);
        assert!(project(&rel, &[9]).is_err());
    }

    #[test]
    fn join_basic() {
        let l = r(vec![tuple![1, 2], tuple![2, 3]]);
        let rr = r(vec![tuple![2, 30], tuple![3, 40], tuple![3, 41]]);
        let out = join(&l, &rr, &[(1, 0)]).unwrap();
        assert_eq!(
            out.sorted_rows(),
            vec![
                tuple![1, 2, 2, 30],
                tuple![2, 3, 3, 40],
                tuple![2, 3, 3, 41]
            ]
        );
    }

    #[test]
    fn join_mixed_value_kinds() {
        // Ints and symbols in the key columns: the tagged key words must
        // keep them apart through the hash fold and the verification.
        let l = r(vec![tuple![1, "x"], tuple![2, "y"], tuple![3, "z"]]);
        let rr = r(vec![tuple!["x", 10], tuple!["z", 30]]);
        let out = join(&l, &rr, &[(1, 0)]).unwrap();
        assert_eq!(
            out.sorted_rows(),
            vec![tuple![1, "x", "x", 10], tuple![3, "z", "z", 30]]
        );
    }

    #[test]
    fn join_reuses_prepared_index() {
        let l = r(vec![tuple![1, 2], tuple![2, 3]]);
        let mut rr = r(vec![tuple![2, 30], tuple![3, 40]]);
        rr.ensure_index(&[0]).unwrap();
        let with_idx = join(&l, &rr, &[(1, 0)]).unwrap();
        let without = join(&l, &r(vec![tuple![2, 30], tuple![3, 40]]), &[(1, 0)]).unwrap();
        assert_eq!(with_idx, without);
    }

    #[test]
    fn join_on_no_columns_is_cross() {
        let l = r(vec![tuple![1], tuple![2]]);
        let rr = r(vec![tuple![10], tuple![20]]);
        let out = join(&l, &rr, &[]).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out, cross(&l, &rr));
    }

    #[test]
    fn semijoin_and_antijoin_partition() {
        let l = r(vec![tuple![1, 2], tuple![2, 3], tuple![4, 5]]);
        let rr = r(vec![tuple![2], tuple![5]]);
        let semi = semijoin(&l, &rr, &[(1, 0)]).unwrap();
        let anti = antijoin(&l, &rr, &[(1, 0)]).unwrap();
        assert_eq!(semi.rows(), &[tuple![1, 2], tuple![4, 5]]);
        assert_eq!(anti.rows(), &[tuple![2, 3]]);
        assert_eq!(union(&semi, &anti).unwrap(), l);
    }

    #[test]
    fn union_requires_same_arity() {
        let a = r(vec![tuple![1]]);
        let b = r(vec![tuple![1, 2]]);
        assert!(union(&a, &b).is_err());
    }

    #[test]
    fn difference_removes() {
        let a = r(vec![tuple![1], tuple![2], tuple![3]]);
        let b = r(vec![tuple![2]]);
        assert_eq!(difference(&a, &b).unwrap().rows(), &[tuple![1], tuple![3]]);
    }

    #[test]
    fn aggregate_count_and_sum_group_in_first_occurrence_order() {
        let rel = r(vec![
            tuple![1, 10],
            tuple![2, 5],
            tuple![1, 20],
            tuple![2, 5], // dedup'd by the relation already
            tuple![1, 10],
        ]);
        let cnt = aggregate(&rel, &[0], 1, AggFunc::Count).unwrap();
        assert_eq!(cnt.rows(), &[tuple![1, 2], tuple![2, 1]]);
        let sum = aggregate(&rel, &[0], 1, AggFunc::Sum).unwrap();
        assert_eq!(sum.rows(), &[tuple![1, 30], tuple![2, 5]]);
    }

    #[test]
    fn aggregate_min_max() {
        let rel = r(vec![tuple![1, 7], tuple![1, 3], tuple![2, 9]]);
        let mn = aggregate(&rel, &[0], 1, AggFunc::Min).unwrap();
        assert_eq!(mn.rows(), &[tuple![1, 3], tuple![2, 9]]);
        let mx = aggregate(&rel, &[0], 1, AggFunc::Max).unwrap();
        assert_eq!(mx.rows(), &[tuple![1, 7], tuple![2, 9]]);
    }

    #[test]
    fn aggregate_empty_group_key_is_global() {
        let rel = r(vec![tuple![4], tuple![7], tuple![1]]);
        let out = aggregate(&rel, &[], 0, AggFunc::Max).unwrap();
        assert_eq!(out.rows(), &[tuple![7]]);
        assert!(aggregate(&Relation::new(1), &[], 0, AggFunc::Count)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn aggregate_rejects_symbols_except_count() {
        let rel = r(vec![tuple![1, "a"], tuple![1, "b"]]);
        assert_eq!(
            aggregate(&rel, &[0], 1, AggFunc::Count).unwrap().rows(),
            &[tuple![1, 2]]
        );
        assert!(matches!(
            aggregate(&rel, &[0], 1, AggFunc::Sum),
            Err(AggError::NonInt { .. })
        ));
        assert!(matches!(
            aggregate(&rel, &[0], 1, AggFunc::Min),
            Err(AggError::NonInt { .. })
        ));
    }

    #[test]
    fn aggregate_sum_overflow_is_typed() {
        let rel = r(vec![tuple![1, i64::MAX], tuple![1, 1]]);
        assert_eq!(
            aggregate(&rel, &[0], 1, AggFunc::Sum),
            Err(AggError::Overflow)
        );
    }

    #[test]
    fn aggregate_checks_columns() {
        let rel = r(vec![tuple![1, 2]]);
        assert!(matches!(
            aggregate(&rel, &[5], 1, AggFunc::Count),
            Err(AggError::Storage(_))
        ));
    }
}
