#![warn(missing_docs)]

//! # mp-storage
//!
//! In-memory relational storage substrate for the message-passing logical
//! query evaluation framework (Van Gelder, SIGMOD 1986).
//!
//! The paper's processes each "compute an intermediate relation, more or
//! less by standard relational algebra methods" (§1.2). This crate provides
//! exactly that substrate:
//!
//! * [`Value`] — the scalar domain: a copyable tagged word holding an
//!   integer or an interned symbol id (process-wide interner),
//! * [`Tuple`] — fixed-arity rows,
//! * [`Relation`] — duplicate-free, insertion-ordered sets of tuples
//!   stored once in an arena, with incrementally maintained [`KeyIndex`]
//!   hash indexes on arbitrary column subsets (the semi-join operands
//!   that class-`d` arguments require),
//! * [`ops`] — select / project / join / semijoin / union / difference,
//!   index-backed and sharing one probe kernel with the engine's
//!   pipelined per-tuple forms.
//!
//! Everything is deterministic: relations iterate in insertion order, and
//! all operators produce insertion-ordered output, so two runs over the
//! same inputs yield identical results. The simulated message-passing
//! runtime builds its reproducibility on that determinism.

pub mod fast_hash;
mod interner;
pub mod ops;
mod relation;
mod tuple;
mod value;

pub use fast_hash::{FastHasher, FastMap, FastSet};
pub use interner::{reserve_symbols, symbol_bytes, symbol_count};
pub use ops::{AggError, AggFunc};
pub use relation::{IndexedRelation, KeyIndex, Relation};
pub use tuple::Tuple;
pub use value::{Sym, Value};

/// Errors produced by storage operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A tuple's arity did not match the relation's arity.
    ArityMismatch {
        /// Arity the relation expects.
        expected: usize,
        /// Arity of the offending tuple.
        got: usize,
    },
    /// A column index was out of bounds for the relation's arity.
    ColumnOutOfBounds {
        /// The offending column index.
        column: usize,
        /// The relation's arity.
        arity: usize,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected}, got {got}")
            }
            StorageError::ColumnOutOfBounds { column, arity } => {
                write!(f, "column {column} out of bounds for arity {arity}")
            }
        }
    }
}

impl std::error::Error for StorageError {}
