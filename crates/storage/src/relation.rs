//! Duplicate-free, insertion-ordered relations with incrementally
//! maintained hash indexes over column-major storage.
//!
//! Deletion of duplicates is load-bearing in the paper: "Detection of
//! duplicates is necessary to allow loops to terminate" (§3.1). Every
//! relation here is a set; [`Relation::insert`] reports whether the tuple
//! was genuinely new, which is exactly the signal nodes use to decide
//! whether to forward an answer tuple.
//!
//! Rows are stored twice, deliberately:
//!
//! * a row arena (`Vec<Tuple>`) keeps the `Arc<[Value]>` tuple view the
//!   message plane ships — cloning a row out of the arena is a refcount
//!   bump, and
//! * a column-major mirror (one `Vec<Value>` per column of interned
//!   tagged words) feeds the scan, probe-verification, and batched
//!   key-hashing kernels with contiguous slices — no per-row `Arc`
//!   dereference, no pointer chasing, in the hot loops.
//!
//! The dedup structure and every [`KeyIndex`] hold `u32` row ids into the
//! arena and store *hashes*, not keys: candidates are verified against
//! the column mirror, so a tuple's values are never stored a third time
//! and indexes stay valid as rows are appended.

use crate::fast_hash::{fold_key_word, FastMap, FastSet};
use crate::{FastHasher, StorageError, Tuple, Value};
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault};

/// Fold a probe key into the `u64` bucket hash all key indexes share.
/// The fold must match [`Relation::key_hashes`] word for word: the
/// batched per-column pass and the per-key pass land in the same bucket.
#[inline]
pub(crate) fn key_hash(key: &[Value]) -> u64 {
    key.iter().fold(0, |h, v| fold_key_word(h, v.key_word()))
}

/// A set of same-arity tuples, iterated in insertion order.
///
/// The relation owns its rows in an arena (plus the column-major mirror)
/// and maintains, on demand, hash indexes over arbitrary column sets
/// ([`Relation::ensure_index`]) that are updated incrementally on every
/// [`Relation::insert`]. Rule nodes store their subgoals' temporary
/// relations (§3.1) and probe them by `d`-column values on every
/// arriving tuple; prepared indexes keep those probes O(1) amortized as
/// tuples trickle in.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    rows: Vec<Tuple>,
    /// Column-major mirror of `rows`: `cols[c][i] == rows[i][c]`. The
    /// scan and verification kernels loop over these contiguous slices.
    cols: Vec<Vec<Value>>,
    /// Dedup set: row hash → ids of rows with that hash. Holds ids, not
    /// cloned tuples; candidates are verified against the arena. Keys
    /// are interned engine data, so the deterministic [`FastHasher`]
    /// replaces SipHash on this hottest of paths.
    dedup: FastMap<u64, Vec<u32>>,
    /// Hash state used to fold a row into the `u64` dedup key.
    state: BuildHasherDefault<FastHasher>,
    indexes: HashMap<Vec<usize>, KeyIndex>,
}

impl Relation {
    /// Create an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            rows: Vec::new(),
            cols: vec![Vec::new(); arity],
            dedup: FastMap::default(),
            state: BuildHasherDefault::default(),
            indexes: HashMap::new(),
        }
    }

    /// Create a relation from an iterator of tuples, deduplicating.
    /// Errors if any tuple disagrees with `arity`.
    pub fn from_tuples(
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, StorageError> {
        let mut rel = Relation::new(arity);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row ids (into [`Relation::rows`]) of arena rows equal to `t`,
    /// i.e. zero or one id since the relation is a set.
    fn find(&self, t: &Tuple) -> Option<u32> {
        self.find_hashed(self.state.hash_one(t), t)
    }

    fn find_hashed(&self, h: u64, t: &Tuple) -> Option<u32> {
        self.dedup
            .get(&h)?
            .iter()
            .copied()
            .find(|&i| self.rows[i as usize] == *t)
    }

    /// Insert a tuple. Returns `Ok(true)` if the tuple was new, `Ok(false)`
    /// if it was a duplicate. All prepared indexes are updated.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, StorageError> {
        if t.arity() != self.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.arity,
                got: t.arity(),
            });
        }
        let h = self.state.hash_one(&t);
        if self.find_hashed(h, &t).is_some() {
            return Ok(false);
        }
        let row_id = self.rows.len() as u32;
        for idx in self.indexes.values_mut() {
            idx.add(row_id, &t);
        }
        for (col, &v) in self.cols.iter_mut().zip(t.values()) {
            col.push(v);
        }
        self.rows.push(t);
        self.dedup.entry(h).or_default().push(row_id);
        Ok(true)
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.find(t).is_some()
    }

    /// Iterate in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows.iter()
    }

    /// The rows as a slice (insertion order).
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// One column of the column-major mirror, as a contiguous slice of
    /// interned words: `column(c)[i] == rows()[i][c]`. This is the slice
    /// the tight scan/join kernels loop over.
    ///
    /// # Panics
    /// Panics if `c >= arity()`.
    pub fn column(&self, c: usize) -> &[Value] {
        &self.cols[c]
    }

    /// Batched key hashing over the column mirror: one pass per key
    /// column, folding each row's word into its running bucket hash.
    /// `key_hashes(cols)[i]` equals [`key_hash`] of row `i` projected
    /// onto `cols` — the join kernels compute the whole probe-hash
    /// column in column-at-a-time passes instead of gathering per row.
    ///
    /// Callers validate `cols` against the arity first.
    pub(crate) fn key_hashes(&self, cols: &[usize]) -> Vec<u64> {
        let mut hashes = vec![0u64; self.rows.len()];
        for &c in cols {
            let col = &self.cols[c];
            for (h, v) in hashes.iter_mut().zip(col) {
                *h = fold_key_word(*h, v.key_word());
            }
        }
        hashes
    }

    /// A canonically sorted copy of the rows, for order-insensitive
    /// comparisons in tests and reports.
    pub fn sorted_rows(&self) -> Vec<Tuple> {
        let mut v = self.rows.clone();
        v.sort();
        v
    }

    /// Set equality (ignores insertion order).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.arity == other.arity
            && self.rows.len() == other.rows.len()
            && other.iter().all(|t| self.contains(t))
    }

    /// Ensure an index exists on `cols` (builds it over existing rows);
    /// it is then maintained incrementally by [`Relation::insert`].
    pub fn ensure_index(&mut self, cols: &[usize]) -> Result<(), StorageError> {
        if !self.indexes.contains_key(cols) {
            let idx = KeyIndex::build(self, cols)?;
            self.indexes.insert(cols.to_vec(), idx);
        }
        Ok(())
    }

    /// The prepared index on exactly `cols`, if any.
    pub fn index_for(&self, cols: &[usize]) -> Option<&KeyIndex> {
        self.indexes.get(cols)
    }

    /// Tuples whose projection onto `cols` equals `key`, using an index if
    /// one exists on exactly those columns, else scanning.
    ///
    /// Call [`Relation::ensure_index`] up front on hot column sets.
    pub fn lookup<'a>(&'a self, cols: &[usize], key: &Tuple) -> Vec<&'a Tuple> {
        self.probe(cols, key.values())
    }

    /// The shared probe kernel: row ids matching `key` on `cols`, fed to
    /// `f` in arena order. Index-backed when a prepared index exists on
    /// exactly `cols` (hash-bucket candidates verified against the
    /// column mirror), else a tight scan over the column slices.
    fn probe_ids(&self, cols: &[usize], key: &[Value], mut f: impl FnMut(u32)) {
        if let Some(idx) = self.indexes.get(cols) {
            for id in idx.probe_in(self, key) {
                f(id);
            }
            return;
        }
        // Columnar scan fallback. A column outside the arity matches
        // nothing (same contract the tuple-at-a-time scan had); extra
        // probe columns beyond the key (or vice versa) are ignored.
        let mut pairs: Vec<(&[Value], Value)> = Vec::with_capacity(cols.len().min(key.len()));
        for (&c, &v) in cols.iter().zip(key) {
            match self.cols.get(c) {
                Some(col) => pairs.push((col.as_slice(), v)),
                None => return,
            }
        }
        'row: for i in 0..self.rows.len() {
            for (col, v) in &pairs {
                if col[i] != *v {
                    continue 'row;
                }
            }
            f(i as u32);
        }
    }

    /// [`Relation::lookup`] with a borrowed key slice — the engine's
    /// per-tuple probe form, no key allocation when an index exists.
    pub fn probe<'a>(&'a self, cols: &[usize], key: &[Value]) -> Vec<&'a Tuple> {
        let mut out = Vec::new();
        self.probe_ids(cols, key, |i| out.push(&self.rows[i as usize]));
        out
    }

    /// Owned-tuples form of [`Relation::probe`]: clones the matches
    /// straight out of the arena — one result allocation, no
    /// intermediate reference vector. The engine's join kernels use this
    /// when they must release the borrow before acting on the matches.
    pub fn probe_cloned(&self, cols: &[usize], key: &[Value]) -> Vec<Tuple> {
        let mut out = Vec::new();
        self.probe_ids(cols, key, |i| out.push(self.rows[i as usize].clone()));
        out
    }

    /// Distinct values of a single column (insertion order of first sight).
    pub fn distinct_column(&self, col: usize) -> Vec<Value> {
        let mut seen = FastSet::default();
        let mut out = Vec::new();
        for &v in &self.cols[col] {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}
impl Eq for Relation {}

/// Historical name for a [`Relation`] with prepared indexes. Index
/// maintenance now lives on [`Relation`] itself; the alias keeps older
/// call sites and tests readable.
pub type IndexedRelation = Relation;

/// A hash index from values of a column subset to candidate row ids.
///
/// The map is keyed by the *hash* of the key, not the key itself — the
/// index never stores tuple data, only `u32` ids into the owning
/// relation's arena. Probes verify candidates against the relation's
/// column mirror ([`KeyIndex::probe_in`]), so hash collisions are
/// benign; they cost a failed comparison, never a wrong answer.
#[derive(Clone, Debug, Default)]
pub struct KeyIndex {
    cols: Vec<usize>,
    /// Bucket-hash of the projected key → candidate row ids.
    buckets: FastMap<u64, Vec<u32>>,
}

impl KeyIndex {
    /// Build an index over `cols` for all rows of `rel`, hashing the key
    /// columns in batched column-at-a-time passes.
    pub fn build(rel: &Relation, cols: &[usize]) -> Result<Self, StorageError> {
        for &c in cols {
            if c >= rel.arity() {
                return Err(StorageError::ColumnOutOfBounds {
                    column: c,
                    arity: rel.arity(),
                });
            }
        }
        let mut idx = KeyIndex {
            cols: cols.to_vec(),
            buckets: FastMap::default(),
        };
        for (i, h) in rel.key_hashes(cols).into_iter().enumerate() {
            idx.buckets.entry(h).or_default().push(i as u32);
        }
        Ok(idx)
    }

    /// The indexed columns.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Register a row in the index. Hashes the key columns straight out
    /// of the tuple — nothing is projected or stored.
    pub fn add(&mut self, row_id: u32, t: &Tuple) {
        let h = self
            .cols
            .iter()
            .fold(0, |h, &c| fold_key_word(h, t[c].key_word()));
        self.buckets.entry(h).or_default().push(row_id);
    }

    /// Unverified candidate row ids in the bucket for a precomputed key
    /// hash. The batch join kernels pair this with [`KeyIndex::verify`]
    /// after a [`Relation::key_hashes`] pass.
    pub(crate) fn candidates(&self, hash: u64) -> &[u32] {
        self.buckets.get(&hash).map_or(&[], Vec::as_slice)
    }

    /// True if arena row `id` of `rel` matches `key` on the indexed
    /// columns — a tight comparison against the column mirror.
    pub(crate) fn verify(&self, rel: &Relation, id: u32, key: &[Value]) -> bool {
        self.cols
            .iter()
            .zip(key)
            .all(|(&c, v)| rel.cols[c][id as usize] == *v)
    }

    /// Row ids of `rel` whose projection onto the indexed columns equals
    /// `key`, in arena order: bucket candidates verified against the
    /// column mirror. `rel` must be the relation the index was built
    /// over (or is maintained by).
    pub fn probe_in<'a>(
        &'a self,
        rel: &'a Relation,
        key: &'a [Value],
    ) -> impl Iterator<Item = u32> + 'a {
        let cands = if key.len() == self.cols.len() {
            self.candidates(key_hash(key))
        } else {
            // A mis-sized key can never equal a projection onto `cols`.
            &[]
        };
        cands
            .iter()
            .copied()
            .filter(move |&id| self.verify(rel, id, key))
    }

    /// Number of distinct key hashes (equals the number of distinct keys
    /// up to hash collisions, which the probes tolerate).
    pub fn distinct_keys(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rel(rows: &[Tuple]) -> Relation {
        Relation::from_tuples(rows.first().map_or(0, Tuple::arity), rows.iter().cloned())
            .expect("test rows share an arity")
    }

    #[test]
    fn insert_deduplicates_and_preserves_order() {
        let mut r = Relation::new(2);
        assert!(r.insert(tuple![1, 2]).unwrap());
        assert!(r.insert(tuple![3, 4]).unwrap());
        assert!(!r.insert(tuple![1, 2]).unwrap());
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows(), &[tuple![1, 2], tuple![3, 4]]);
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut r = Relation::new(2);
        assert_eq!(
            r.insert(tuple![1]),
            Err(StorageError::ArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn from_tuples_reports_ragged_arity() {
        let err = Relation::from_tuples(2, vec![tuple![1, 2], tuple![3]]);
        assert_eq!(
            err,
            Err(StorageError::ArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn set_eq_ignores_order() {
        let a = rel(&[tuple![1, 2], tuple![3, 4]]);
        let b = rel(&[tuple![3, 4], tuple![1, 2]]);
        assert_eq!(a, b);
        let c = rel(&[tuple![1, 2]]);
        assert_ne!(a, c);
    }

    #[test]
    fn column_mirror_tracks_rows() {
        let r = rel(&[tuple![1, 10], tuple![2, 20], tuple![3, 30]]);
        assert_eq!(r.column(0), &[Value::int(1), Value::int(2), Value::int(3)]);
        assert_eq!(
            r.column(1),
            &[Value::int(10), Value::int(20), Value::int(30)]
        );
        for (i, t) in r.iter().enumerate() {
            assert_eq!(r.column(0)[i], t[0]);
            assert_eq!(r.column(1)[i], t[1]);
        }
    }

    #[test]
    fn batched_key_hashes_match_scalar_fold() {
        let r = rel(&[tuple![1, 10, "a"], tuple![2, 20, "b"], tuple![1, 20, "a"]]);
        let cols = [2usize, 0];
        let batched = r.key_hashes(&cols);
        for (i, t) in r.iter().enumerate() {
            let key: Vec<Value> = cols.iter().map(|&c| t[c]).collect();
            assert_eq!(batched[i], key_hash(&key), "row {i}");
        }
    }

    #[test]
    fn key_index_lookup() {
        let r = rel(&[tuple![1, 10], tuple![1, 11], tuple![2, 20]]);
        let idx = KeyIndex::build(&r, &[0]).unwrap();
        let ids = |key: &Tuple| -> Vec<u32> { idx.probe_in(&r, key.values()).collect() };
        assert_eq!(ids(&tuple![1]), vec![0, 1]);
        assert_eq!(ids(&tuple![2]), vec![2]);
        assert_eq!(ids(&tuple![9]), Vec::<u32>::new());
        // A mis-sized probe key matches nothing.
        assert_eq!(ids(&tuple![1, 10]), Vec::<u32>::new());
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn key_index_rejects_bad_column() {
        let r = rel(&[tuple![1, 2]]);
        assert!(matches!(
            KeyIndex::build(&r, &[5]),
            Err(StorageError::ColumnOutOfBounds {
                column: 5,
                arity: 2
            })
        ));
    }

    #[test]
    fn indexed_relation_incremental_maintenance() {
        let mut r = IndexedRelation::new(2);
        r.ensure_index(&[0]).unwrap();
        r.insert(tuple![1, 10]).unwrap();
        r.insert(tuple![1, 11]).unwrap();
        r.insert(tuple![2, 20]).unwrap();
        assert!(!r.insert(tuple![2, 20]).unwrap());
        let hits = r.lookup(&[0], &tuple![1]);
        assert_eq!(hits.len(), 2);
        // Lookup without a prepared index falls back to scanning.
        let hits2 = r.lookup(&[1], &tuple![20]);
        assert_eq!(hits2, vec![&tuple![2, 20]]);
    }

    #[test]
    fn distinct_column_orders_by_first_sight() {
        let mut r = IndexedRelation::new(2);
        for t in [tuple![2, 0], tuple![1, 0], tuple![2, 1]] {
            r.insert(t).unwrap();
        }
        assert_eq!(r.distinct_column(0), vec![Value::int(2), Value::int(1)]);
    }

    #[test]
    fn clone_preserves_dedup_and_indexes() {
        let mut r = Relation::new(2);
        r.ensure_index(&[0]).unwrap();
        r.insert(tuple![1, 10]).unwrap();
        let mut c = r.clone();
        assert!(!c.insert(tuple![1, 10]).unwrap());
        assert!(c.insert(tuple![1, 11]).unwrap());
        assert_eq!(c.lookup(&[0], &tuple![1]).len(), 2);
        // The original is untouched.
        assert_eq!(r.len(), 1);
        assert_eq!(c.column(1).len(), 2);
    }

    #[test]
    fn column_mirror_matches_rows_exactly() {
        // The columnar kernels read `column(c)` where the row-major path
        // reads `rows()[i][c]`; the mirror must track every insert
        // (including rejected duplicates) word for word.
        let mut r = Relation::new(3);
        for i in 0..32i64 {
            r.insert(tuple![i % 7, i * 3, i]).unwrap();
            r.insert(tuple![i % 7, i * 3, i]).unwrap(); // duplicate: no-op
        }
        assert_eq!(r.len(), 32);
        for c in 0..3 {
            let col = r.column(c);
            assert_eq!(col.len(), r.len());
            for (i, row) in r.rows().iter().enumerate() {
                assert_eq!(col[i], row[c], "mirror diverged at row {i} col {c}");
            }
        }
    }

    #[test]
    fn batched_key_hashes_match_scalar_key_hash() {
        // `key_hashes` computes the probe-hash column in per-column
        // passes; it must agree with the scalar `key_hash` of each row's
        // projection for any key column set, else batched joins probe
        // the wrong buckets.
        let mut r = Relation::new(3);
        for i in 0..24i64 {
            r.insert(tuple![i % 5, i % 3, i]).unwrap();
        }
        for cols in [&[0usize][..], &[1], &[2], &[0, 2], &[2, 0], &[0, 1, 2]] {
            let batched = r.key_hashes(cols);
            for (i, row) in r.rows().iter().enumerate() {
                let key: Vec<Value> = cols.iter().map(|&c| row[c]).collect();
                assert_eq!(
                    batched[i],
                    key_hash(&key),
                    "cols {cols:?} row {i}: batched hash diverged from scalar"
                );
            }
        }
    }
}
