//! Duplicate-free, insertion-ordered relations with incrementally
//! maintained hash indexes.
//!
//! Deletion of duplicates is load-bearing in the paper: "Detection of
//! duplicates is necessary to allow loops to terminate" (§3.1). Every
//! relation here is a set; [`Relation::insert`] reports whether the tuple
//! was genuinely new, which is exactly the signal nodes use to decide
//! whether to forward an answer tuple.
//!
//! Rows live once in an append-only arena (`Vec<Tuple>`); the dedup
//! structure and every [`KeyIndex`] hold `u32` row ids into that arena,
//! so a tuple is never stored twice and indexes stay valid as rows are
//! appended.

use crate::fast_hash::{FastMap, FastSet};
use crate::{FastHasher, StorageError, Tuple, Value};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasher, BuildHasherDefault};

/// A set of same-arity tuples, iterated in insertion order.
///
/// The relation owns its rows in an arena and maintains, on demand, hash
/// indexes over arbitrary column sets ([`Relation::ensure_index`]) that
/// are updated incrementally on every [`Relation::insert`]. Rule nodes
/// store their subgoals' temporary relations (§3.1) and probe them by
/// `d`-column values on every arriving tuple; prepared indexes keep
/// those probes O(1) amortized as tuples trickle in.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    rows: Vec<Tuple>,
    /// Dedup set: row hash → ids of rows with that hash. Holds ids, not
    /// cloned tuples; candidates are verified against the arena. Keys
    /// are interned engine data, so the deterministic [`FastHasher`]
    /// replaces SipHash on this hottest of paths.
    dedup: FastMap<u64, Vec<u32>>,
    /// Hash state used to fold a row into the `u64` dedup key.
    state: BuildHasherDefault<FastHasher>,
    indexes: HashMap<Vec<usize>, KeyIndex>,
}

impl Relation {
    /// Create an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            rows: Vec::new(),
            dedup: FastMap::default(),
            state: BuildHasherDefault::default(),
            indexes: HashMap::new(),
        }
    }

    /// Create a relation from an iterator of tuples, deduplicating.
    /// Errors if any tuple disagrees with `arity`.
    pub fn from_tuples(
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> Result<Self, StorageError> {
        let mut rel = Relation::new(arity);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row ids (into [`Relation::rows`]) of arena rows equal to `t`,
    /// i.e. zero or one id since the relation is a set.
    fn find(&self, t: &Tuple) -> Option<u32> {
        self.find_hashed(self.state.hash_one(t), t)
    }

    fn find_hashed(&self, h: u64, t: &Tuple) -> Option<u32> {
        self.dedup
            .get(&h)?
            .iter()
            .copied()
            .find(|&i| self.rows[i as usize] == *t)
    }

    /// Insert a tuple. Returns `Ok(true)` if the tuple was new, `Ok(false)`
    /// if it was a duplicate. All prepared indexes are updated.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, StorageError> {
        if t.arity() != self.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.arity,
                got: t.arity(),
            });
        }
        let h = self.state.hash_one(&t);
        if self.find_hashed(h, &t).is_some() {
            return Ok(false);
        }
        let row_id = self.rows.len() as u32;
        for idx in self.indexes.values_mut() {
            idx.add(row_id, &t);
        }
        self.rows.push(t);
        self.dedup.entry(h).or_default().push(row_id);
        Ok(true)
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.find(t).is_some()
    }

    /// Iterate in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows.iter()
    }

    /// The rows as a slice (insertion order).
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// A canonically sorted copy of the rows, for order-insensitive
    /// comparisons in tests and reports.
    pub fn sorted_rows(&self) -> Vec<Tuple> {
        let mut v = self.rows.clone();
        v.sort();
        v
    }

    /// Set equality (ignores insertion order).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.arity == other.arity
            && self.rows.len() == other.rows.len()
            && other.iter().all(|t| self.contains(t))
    }

    /// Ensure an index exists on `cols` (builds it over existing rows);
    /// it is then maintained incrementally by [`Relation::insert`].
    pub fn ensure_index(&mut self, cols: &[usize]) -> Result<(), StorageError> {
        if !self.indexes.contains_key(cols) {
            let idx = KeyIndex::build(self, cols)?;
            self.indexes.insert(cols.to_vec(), idx);
        }
        Ok(())
    }

    /// The prepared index on exactly `cols`, if any.
    pub fn index_for(&self, cols: &[usize]) -> Option<&KeyIndex> {
        self.indexes.get(cols)
    }

    /// Tuples whose projection onto `cols` equals `key`, using an index if
    /// one exists on exactly those columns, else scanning.
    ///
    /// Call [`Relation::ensure_index`] up front on hot column sets.
    pub fn lookup<'a>(&'a self, cols: &[usize], key: &Tuple) -> Vec<&'a Tuple> {
        self.probe(cols, key.values())
    }

    /// [`Relation::lookup`] with a borrowed key slice — the engine's
    /// per-tuple probe form, no key allocation when an index exists.
    pub fn probe<'a>(&'a self, cols: &[usize], key: &[Value]) -> Vec<&'a Tuple> {
        if let Some(idx) = self.indexes.get(cols) {
            idx.probe(key)
                .iter()
                .map(|&i| &self.rows[i as usize])
                .collect()
        } else {
            self.rows
                .iter()
                .filter(|t| {
                    cols.iter()
                        .zip(key)
                        .all(|(&c, v)| t.values().get(c) == Some(v))
                })
                .collect()
        }
    }

    /// Owned-tuples form of [`Relation::probe`]: clones the matches
    /// straight out of the arena — one result allocation, no
    /// intermediate reference vector. The engine's join kernels use this
    /// when they must release the borrow before acting on the matches.
    pub fn probe_cloned(&self, cols: &[usize], key: &[Value]) -> Vec<Tuple> {
        if let Some(idx) = self.indexes.get(cols) {
            idx.probe(key)
                .iter()
                .map(|&i| self.rows[i as usize].clone())
                .collect()
        } else {
            self.rows
                .iter()
                .filter(|t| {
                    cols.iter()
                        .zip(key)
                        .all(|(&c, v)| t.values().get(c) == Some(v))
                })
                .cloned()
                .collect()
        }
    }

    /// Distinct values of a single column (insertion order of first sight).
    pub fn distinct_column(&self, col: usize) -> Vec<Value> {
        let mut seen = FastSet::default();
        let mut out = Vec::new();
        for t in self.iter() {
            let v = t[col];
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}
impl Eq for Relation {}

/// Historical name for a [`Relation`] with prepared indexes. Index
/// maintenance now lives on [`Relation`] itself; the alias keeps older
/// call sites and tests readable.
pub type IndexedRelation = Relation;

/// A hash index from values of a column subset to row ids.
#[derive(Clone, Debug, Default)]
pub struct KeyIndex {
    cols: Vec<usize>,
    map: FastMap<Tuple, Vec<u32>>,
}

impl KeyIndex {
    /// Build an index over `cols` for all rows of `rel`.
    pub fn build(rel: &Relation, cols: &[usize]) -> Result<Self, StorageError> {
        for &c in cols {
            if c >= rel.arity() {
                return Err(StorageError::ColumnOutOfBounds {
                    column: c,
                    arity: rel.arity(),
                });
            }
        }
        let mut idx = KeyIndex {
            cols: cols.to_vec(),
            map: FastMap::default(),
        };
        for (i, t) in rel.iter().enumerate() {
            idx.add(i as u32, t);
        }
        Ok(idx)
    }

    /// The indexed columns.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Register a row in the index. Probes by a stack-projected key
    /// slice first, so rows landing on an existing key (the common case
    /// on skewed columns) allocate nothing.
    pub fn add(&mut self, row_id: u32, t: &Tuple) {
        if self.cols.len() <= 16 {
            let mut buf = [Value::int(0); 16];
            for (i, &c) in self.cols.iter().enumerate() {
                buf[i] = t[c];
            }
            if let Some(ids) = self.map.get_mut(&buf[..self.cols.len()]) {
                ids.push(row_id);
                return;
            }
        }
        let key = t.project(&self.cols);
        match self.map.entry(key) {
            Entry::Occupied(mut e) => e.get_mut().push(row_id),
            Entry::Vacant(e) => {
                e.insert(vec![row_id]);
            }
        }
    }

    /// Row ids whose projection onto the indexed columns equals `key`.
    pub fn get(&self, key: &Tuple) -> &[u32] {
        self.probe(key.values())
    }

    /// [`KeyIndex::get`] with a borrowed key slice (no allocation).
    pub fn probe(&self, key: &[Value]) -> &[u32] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rel(rows: &[Tuple]) -> Relation {
        Relation::from_tuples(rows.first().map_or(0, Tuple::arity), rows.iter().cloned())
            .expect("test rows share an arity")
    }

    #[test]
    fn insert_deduplicates_and_preserves_order() {
        let mut r = Relation::new(2);
        assert!(r.insert(tuple![1, 2]).unwrap());
        assert!(r.insert(tuple![3, 4]).unwrap());
        assert!(!r.insert(tuple![1, 2]).unwrap());
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows(), &[tuple![1, 2], tuple![3, 4]]);
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut r = Relation::new(2);
        assert_eq!(
            r.insert(tuple![1]),
            Err(StorageError::ArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn from_tuples_reports_ragged_arity() {
        let err = Relation::from_tuples(2, vec![tuple![1, 2], tuple![3]]);
        assert_eq!(
            err,
            Err(StorageError::ArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn set_eq_ignores_order() {
        let a = rel(&[tuple![1, 2], tuple![3, 4]]);
        let b = rel(&[tuple![3, 4], tuple![1, 2]]);
        assert_eq!(a, b);
        let c = rel(&[tuple![1, 2]]);
        assert_ne!(a, c);
    }

    #[test]
    fn key_index_lookup() {
        let r = rel(&[tuple![1, 10], tuple![1, 11], tuple![2, 20]]);
        let idx = KeyIndex::build(&r, &[0]).unwrap();
        assert_eq!(idx.get(&tuple![1]).len(), 2);
        assert_eq!(idx.get(&tuple![2]), &[2]);
        assert_eq!(idx.get(&tuple![9]), &[] as &[u32]);
        assert_eq!(idx.probe(tuple![1].values()).len(), 2);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn key_index_rejects_bad_column() {
        let r = rel(&[tuple![1, 2]]);
        assert!(matches!(
            KeyIndex::build(&r, &[5]),
            Err(StorageError::ColumnOutOfBounds {
                column: 5,
                arity: 2
            })
        ));
    }

    #[test]
    fn indexed_relation_incremental_maintenance() {
        let mut r = IndexedRelation::new(2);
        r.ensure_index(&[0]).unwrap();
        r.insert(tuple![1, 10]).unwrap();
        r.insert(tuple![1, 11]).unwrap();
        r.insert(tuple![2, 20]).unwrap();
        assert!(!r.insert(tuple![2, 20]).unwrap());
        let hits = r.lookup(&[0], &tuple![1]);
        assert_eq!(hits.len(), 2);
        // Lookup without a prepared index falls back to scanning.
        let hits2 = r.lookup(&[1], &tuple![20]);
        assert_eq!(hits2, vec![&tuple![2, 20]]);
    }

    #[test]
    fn distinct_column_orders_by_first_sight() {
        let mut r = IndexedRelation::new(2);
        for t in [tuple![2, 0], tuple![1, 0], tuple![2, 1]] {
            r.insert(t).unwrap();
        }
        assert_eq!(r.distinct_column(0), vec![Value::int(2), Value::int(1)]);
    }

    #[test]
    fn clone_preserves_dedup_and_indexes() {
        let mut r = Relation::new(2);
        r.ensure_index(&[0]).unwrap();
        r.insert(tuple![1, 10]).unwrap();
        let mut c = r.clone();
        assert!(!c.insert(tuple![1, 10]).unwrap());
        assert!(c.insert(tuple![1, 11]).unwrap());
        assert_eq!(c.lookup(&[0], &tuple![1]).len(), 2);
        // The original is untouched.
        assert_eq!(r.len(), 1);
    }
}
