//! Duplicate-free, insertion-ordered relations with optional hash indexes.
//!
//! Deletion of duplicates is load-bearing in the paper: "Detection of
//! duplicates is necessary to allow loops to terminate" (§3.1). Every
//! relation here is a set; [`Relation::insert`] reports whether the tuple
//! was genuinely new, which is exactly the signal nodes use to decide
//! whether to forward an answer tuple.

use crate::{StorageError, Tuple, Value};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// A set of same-arity tuples, iterated in insertion order.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: usize,
    rows: Vec<Tuple>,
    seen: HashSet<Tuple>,
}

impl Relation {
    /// Create an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            rows: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// Create a relation from an iterator of tuples, deduplicating.
    ///
    /// # Panics
    /// Panics if tuples disagree on arity (a programming error — schemas
    /// are validated before data flows).
    pub fn from_tuples(arity: usize, tuples: impl IntoIterator<Item = Tuple>) -> Self {
        let mut rel = Relation::new(arity);
        for t in tuples {
            rel.insert(t).expect("from_tuples: arity mismatch");
        }
        rel
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple. Returns `Ok(true)` if the tuple was new, `Ok(false)`
    /// if it was a duplicate.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, StorageError> {
        if t.arity() != self.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.arity,
                got: t.arity(),
            });
        }
        if self.seen.insert(t.clone()) {
            self.rows.push(t);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.seen.contains(t)
    }

    /// Iterate in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rows.iter()
    }

    /// The rows as a slice (insertion order).
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// A canonically sorted copy of the rows, for order-insensitive
    /// comparisons in tests and reports.
    pub fn sorted_rows(&self) -> Vec<Tuple> {
        let mut v = self.rows.clone();
        v.sort();
        v
    }

    /// Set equality (ignores insertion order).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.seen == other.seen
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collect tuples into a relation, inferring arity from the first
    /// tuple (arity 0 if the iterator is empty).
    fn from_iter<T: IntoIterator<Item = Tuple>>(iter: T) -> Self {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map_or(0, Tuple::arity);
        Relation::from_tuples(arity, it)
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.set_eq(other)
    }
}
impl Eq for Relation {}

/// A hash index from values of a column subset to row ids.
#[derive(Clone, Debug, Default)]
pub struct KeyIndex {
    cols: Vec<usize>,
    map: HashMap<Tuple, Vec<u32>>,
}

impl KeyIndex {
    /// Build an index over `cols` for all rows of `rel`.
    pub fn build(rel: &Relation, cols: &[usize]) -> Result<Self, StorageError> {
        for &c in cols {
            if c >= rel.arity() {
                return Err(StorageError::ColumnOutOfBounds {
                    column: c,
                    arity: rel.arity(),
                });
            }
        }
        let mut idx = KeyIndex {
            cols: cols.to_vec(),
            map: HashMap::new(),
        };
        for (i, t) in rel.iter().enumerate() {
            idx.add(i as u32, t);
        }
        Ok(idx)
    }

    /// The indexed columns.
    pub fn cols(&self) -> &[usize] {
        &self.cols
    }

    /// Register a row in the index.
    pub fn add(&mut self, row_id: u32, t: &Tuple) {
        let key = t.project(&self.cols);
        match self.map.entry(key) {
            Entry::Occupied(mut e) => e.get_mut().push(row_id),
            Entry::Vacant(e) => {
                e.insert(vec![row_id]);
            }
        }
    }

    /// Row ids whose projection onto the indexed columns equals `key`.
    pub fn get(&self, key: &Tuple) -> &[u32] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }
}

/// A relation bundled with incrementally-maintained indexes.
///
/// Rule nodes store their subgoals' temporary relations (§3.1) and probe
/// them by `d`-column values on every arriving tuple; this wrapper keeps
/// those probes O(1) amortized as tuples trickle in.
#[derive(Clone, Debug, Default)]
pub struct IndexedRelation {
    rel: Relation,
    indexes: HashMap<Vec<usize>, KeyIndex>,
}

impl IndexedRelation {
    /// Create an empty indexed relation of the given arity.
    pub fn new(arity: usize) -> Self {
        IndexedRelation {
            rel: Relation::new(arity),
            indexes: HashMap::new(),
        }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &Relation {
        &self.rel
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.rel.arity()
    }

    /// Number of distinct tuples.
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// True if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// Ensure an index exists on `cols` (builds it over existing rows).
    pub fn ensure_index(&mut self, cols: &[usize]) -> Result<(), StorageError> {
        if !self.indexes.contains_key(cols) {
            let idx = KeyIndex::build(&self.rel, cols)?;
            self.indexes.insert(cols.to_vec(), idx);
        }
        Ok(())
    }

    /// Insert a tuple, updating all indexes. Returns whether it was new.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, StorageError> {
        let new = self.rel.insert(t.clone())?;
        if new {
            let row_id = (self.rel.len() - 1) as u32;
            for idx in self.indexes.values_mut() {
                idx.add(row_id, &t);
            }
        }
        Ok(new)
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.rel.contains(t)
    }

    /// Iterate all tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.rel.iter()
    }

    /// Tuples whose projection onto `cols` equals `key`, using an index if
    /// one exists on exactly those columns, else scanning.
    ///
    /// Call [`IndexedRelation::ensure_index`] up front on hot column sets.
    pub fn lookup<'a>(&'a self, cols: &[usize], key: &Tuple) -> Vec<&'a Tuple> {
        if let Some(idx) = self.indexes.get(cols) {
            idx.get(key)
                .iter()
                .map(|&i| &self.rel.rows()[i as usize])
                .collect()
        } else {
            self.rel
                .iter()
                .filter(|t| t.matches_on(cols, key))
                .collect()
        }
    }

    /// Distinct values of a single column (insertion order of first sight).
    pub fn distinct_column(&self, col: usize) -> Vec<Value> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for t in self.rel.iter() {
            let v = t[col].clone();
            if seen.insert(v.clone()) {
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn rel(rows: &[Tuple]) -> Relation {
        Relation::from_tuples(rows.first().map_or(0, Tuple::arity), rows.iter().cloned())
    }

    #[test]
    fn insert_deduplicates_and_preserves_order() {
        let mut r = Relation::new(2);
        assert!(r.insert(tuple![1, 2]).unwrap());
        assert!(r.insert(tuple![3, 4]).unwrap());
        assert!(!r.insert(tuple![1, 2]).unwrap());
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows(), &[tuple![1, 2], tuple![3, 4]]);
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut r = Relation::new(2);
        assert_eq!(
            r.insert(tuple![1]),
            Err(StorageError::ArityMismatch {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn set_eq_ignores_order() {
        let a = rel(&[tuple![1, 2], tuple![3, 4]]);
        let b = rel(&[tuple![3, 4], tuple![1, 2]]);
        assert_eq!(a, b);
        let c = rel(&[tuple![1, 2]]);
        assert_ne!(a, c);
    }

    #[test]
    fn key_index_lookup() {
        let r = rel(&[tuple![1, 10], tuple![1, 11], tuple![2, 20]]);
        let idx = KeyIndex::build(&r, &[0]).unwrap();
        assert_eq!(idx.get(&tuple![1]).len(), 2);
        assert_eq!(idx.get(&tuple![2]), &[2]);
        assert_eq!(idx.get(&tuple![9]), &[] as &[u32]);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn key_index_rejects_bad_column() {
        let r = rel(&[tuple![1, 2]]);
        assert!(matches!(
            KeyIndex::build(&r, &[5]),
            Err(StorageError::ColumnOutOfBounds {
                column: 5,
                arity: 2
            })
        ));
    }

    #[test]
    fn indexed_relation_incremental_maintenance() {
        let mut r = IndexedRelation::new(2);
        r.ensure_index(&[0]).unwrap();
        r.insert(tuple![1, 10]).unwrap();
        r.insert(tuple![1, 11]).unwrap();
        r.insert(tuple![2, 20]).unwrap();
        assert!(!r.insert(tuple![2, 20]).unwrap());
        let hits = r.lookup(&[0], &tuple![1]);
        assert_eq!(hits.len(), 2);
        // Lookup without a prepared index falls back to scanning.
        let hits2 = r.lookup(&[1], &tuple![20]);
        assert_eq!(hits2, vec![&tuple![2, 20]]);
    }

    #[test]
    fn distinct_column_orders_by_first_sight() {
        let mut r = IndexedRelation::new(2);
        for t in [tuple![2, 0], tuple![1, 0], tuple![2, 1]] {
            r.insert(t).unwrap();
        }
        assert_eq!(r.distinct_column(0), vec![Value::int(2), Value::int(1)]);
    }

    #[test]
    fn from_iterator_infers_arity() {
        let r: Relation = vec![tuple![1, 2], tuple![1, 2], tuple![2, 3]]
            .into_iter()
            .collect();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
        let empty: Relation = Vec::<Tuple>::new().into_iter().collect();
        assert_eq!(empty.arity(), 0);
    }
}
