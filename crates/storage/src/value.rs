//! Scalar values: the constant domain of the logical system.
//!
//! The paper's system is function-free, so the Herbrand universe is just
//! the finite set of constants appearing in the EDB and IDB (§1). We model
//! constants as 64-bit integers or interned symbols; a [`Value`] is a
//! copyable tagged word, so tuples are memcpy'd (no refcount traffic) as
//! they flow through message queues.

use crate::interner;
use std::cmp::Ordering;
use std::fmt;

/// An interned symbolic constant: a dense id into the process-wide
/// symbol table ([`crate::symbol_count`]). Equality and hashing compare
/// ids — the interner guarantees one id per distinct string — while
/// ordering resolves and compares the underlying text so symbols still
/// sort lexicographically.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Intern a string and wrap its id.
    pub fn new(s: impl AsRef<str>) -> Self {
        Sym(interner::intern(s.as_ref()))
    }

    /// The interned text. `'static`: the interner owns every symbol for
    /// the life of the process.
    pub fn as_str(self) -> &'static str {
        interner::resolve(self.0)
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.0 == other.0 {
            Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A constant of the logical system.
///
/// `Value` is the element type of [`crate::Tuple`]. It is `Copy` — an
/// integer or an interned symbol id — and totally ordered (integers sort
/// before strings, strings lexicographically) so relations can be
/// canonically sorted for comparison in tests and reports.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An integer constant.
    Int(i64),
    /// A symbolic (string) constant, interned process-wide.
    Str(Sym),
}

impl Value {
    /// Build a string value from anything string-like (interning it).
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Sym::new(s))
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Return the integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Return the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&'static str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s.as_str()),
        }
    }

    /// The word fed to the key-hash fold (`fast_hash::fold_key_word`):
    /// payload plus a tag bit separating symbols from small integers.
    /// Not injective across the whole domain — key-index probes verify
    /// candidates against the column mirror, so a collision costs a
    /// comparison, never a wrong answer.
    #[inline]
    pub(crate) fn key_word(self) -> u64 {
        match self {
            Value::Int(i) => i as u64,
            Value::Str(s) => u64::from(s.0) | (1 << 63),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{}", s.as_str()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        let v = Value::int(42);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v.as_str(), None);
    }

    #[test]
    fn str_round_trip() {
        let v = Value::str("alice");
        assert_eq!(v.as_str(), Some("alice"));
        assert_eq!(v.as_int(), None);
    }

    #[test]
    fn ordering_ints_before_strings() {
        assert!(Value::int(999) < Value::str("a"));
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::str("a") < Value::str("b"));
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Value::str("x"), Value::str("x"));
        assert_ne!(Value::str("x"), Value::str("y"));
        assert_ne!(Value::int(1), Value::str("1"));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(3usize), Value::Int(3));
        assert_eq!(Value::from("s"), Value::str("s"));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
    }

    #[test]
    fn display_matches_debug() {
        assert_eq!(format!("{}", Value::int(7)), "7");
        assert_eq!(format!("{:?}", Value::str("n")), "n");
    }

    #[test]
    fn value_is_a_copyable_word() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<Value>();
        assert!(std::mem::size_of::<Value>() <= 16);
    }

    #[test]
    fn symbol_ordering_is_lexicographic_not_id_order() {
        // Intern in reverse lexicographic order: ids ascend, strings
        // must still sort by text.
        let z = Value::str("zz-order-test");
        let a = Value::str("aa-order-test");
        assert!(a < z);
    }
}
