#!/usr/bin/env bash
# Regenerate the committed mp-analyze annotation plans after an
# intentional analysis change. Run from the repository root, then review
# the diff — every hunk is a change to the analysis contract (plans,
# estimates, partition keys, or MP4xx diagnostics) and should be
# explainable by the change you just made.
#
# Deny fixtures (MP009–MP012: unstratifiable, unsafe-negation,
# aggregate-cycle) make mp-analyze exit 1 by design; the `|| true`
# keeps the regeneration loop alive — their goldens are the blocked
# diagnostics themselves.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p mp-analyze
for f in examples/analyze/*.dl examples/programs/*.dl; do
    name=$(basename "$f" .dl)
    ./target/release/mp-analyze --json "$f" > "examples/analyze/golden/$name.json" || true
    echo "regenerated examples/analyze/golden/$name.json"
done
